"""Lock contention: batched vs unbatched commit path.

The paper (Section 4) attributes the sub-linear two-thread speedup to
"the number of threads contending for the data structures", and warns
that speedup stays near-linear only "as long as the computations
performed by the vertices take significantly more time than the
computations performed to maintain the data structures".  This benchmark
measures exactly that wall: it runs the same layered workload across

* thread counts (the contention axis),
* compute grains (how much work a vertex does per execution — 0 means
  the pure scheduler-overhead regime the paper warns about), and
* batch sizes (1 = the paper's one-pair-per-critical-section loop;
  B > 1 = the batched low-contention commit path),

and reports wall-clock, the global lock's ``contention_ratio``
(contended / total acquisitions), and ``commits_per_acquisition`` (how
many pair commits each lock acquisition amortises).

Unlike the pytest-benchmark suites next door this is a standalone
script, so CI can smoke it cheaply::

    PYTHONPATH=src python benchmarks/bench_lock_contention.py --quick

and the full run commits its results as ``BENCH_lock_contention.json``::

    PYTHONPATH=src python benchmarks/bench_lock_contention.py \
        --out BENCH_lock_contention.json

Interpretation: pure-Python vertex work is serialised by the GIL, so
adding threads to a fine-grained workload *increases* wall-clock at
batch size 1 (every pair pays two lock round-trips plus a queue wake-up).
Batching removes most of those round-trips — the acceptance criterion is
that at >= 4 threads and fine grain the batched engine shows a lower
contention ratio *and* lower wall-clock than the unbatched one.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, List

if __package__ in (None, ""):
    from _runner import bootstrap_src, finish, parse_args
else:
    from ._runner import bootstrap_src, finish, parse_args

bootstrap_src()

from repro.runtime.engine import ParallelEngine  # noqa: E402
from repro.streams.workloads import grid_workload  # noqa: E402

FULL = {
    "width": 6,
    "depth": 4,
    "phases": 80,
    "threads": [1, 2, 4, 8],
    "batches": [1, 4, 16, 64],
    "grains_us": [0, 20, 100],
    "reps": 3,
}
QUICK = {
    "width": 4,
    "depth": 3,
    "phases": 20,
    "threads": [2, 4],
    "batches": [1, 8],
    "grains_us": [0],
    "reps": 1,
}


def build_program(width: int, depth: int, phases: int, grain_us: float):
    prog, phase_inputs = grid_workload(width, depth, phases=phases, seed=7)
    if grain_us:
        spin = grain_us / 1e6
        for beh in prog.behaviors.values():
            orig = beh.on_execute

            def grained(ctx, orig=orig):
                t0 = time.perf_counter()
                while time.perf_counter() - t0 < spin:
                    pass
                return orig(ctx)

            beh.on_execute = grained  # type: ignore[method-assign]
    return prog, phase_inputs


def measure(cfg: Dict[str, Any], threads: int, batch: int,
            grain_us: float) -> Dict[str, Any]:
    prog, phases = build_program(
        cfg["width"], cfg["depth"], cfg["phases"], grain_us
    )
    walls: List[float] = []
    contention: List[float] = []
    commits_per_acq: List[float] = []
    executions = 0
    for _ in range(cfg["reps"]):
        res = ParallelEngine(
            prog, num_threads=threads, batch_size=batch
        ).run(phases)
        executions = res.execution_count
        walls.append(res.wall_time)
        contention.append(res.stats["lock"]["contention_ratio"])
        commits_per_acq.append(
            res.stats["batching"]["commits_per_acquisition"]
        )
    return {
        "threads": threads,
        "batch_size": batch,
        "grain_us": grain_us,
        "executions": executions,
        "wall_time_s": statistics.median(walls),
        "contention_ratio": statistics.median(contention),
        "commits_per_acquisition": statistics.median(commits_per_acq),
    }


def check_criterion(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """At >= 4 threads and the finest grain, batching must reduce both the
    contention ratio and the wall-clock relative to batch size 1."""
    fine = min(r["grain_us"] for r in rows)
    verdicts = []
    for threads in sorted({r["threads"] for r in rows if r["threads"] >= 4}):
        cell = [
            r for r in rows
            if r["threads"] == threads and r["grain_us"] == fine
        ]
        base = next(r for r in cell if r["batch_size"] == 1)
        best = min(
            (r for r in cell if r["batch_size"] > 1),
            key=lambda r: r["wall_time_s"],
        )
        verdicts.append(
            {
                "threads": threads,
                "grain_us": fine,
                "unbatched_wall_s": base["wall_time_s"],
                "batched_wall_s": best["wall_time_s"],
                "batched_batch_size": best["batch_size"],
                "unbatched_contention": base["contention_ratio"],
                "batched_contention": best["contention_ratio"],
                "wall_reduced": best["wall_time_s"] < base["wall_time_s"],
                "contention_reduced": (
                    best["contention_ratio"] <= base["contention_ratio"]
                ),
            }
        )
    return {
        "passed": all(
            v["wall_reduced"] and v["contention_reduced"] for v in verdicts
        ),
        "cells": verdicts,
    }


def main(argv: List[str] | None = None) -> int:
    args = parse_args(__doc__.splitlines()[0], argv)
    cfg = QUICK if args.quick else FULL
    rows: List[Dict[str, Any]] = []
    for grain in cfg["grains_us"]:
        for threads in cfg["threads"]:
            for batch in cfg["batches"]:
                row = measure(cfg, threads, batch, grain)
                rows.append(row)
                print(
                    f"grain={grain:>4}us k={threads} b={batch:<3d} "
                    f"wall={row['wall_time_s'] * 1000:8.1f}ms "
                    f"contention={row['contention_ratio']:.4f} "
                    f"commits/acq={row['commits_per_acquisition']:.2f}"
                )

    criterion = check_criterion(rows) if not args.quick else None
    if criterion is not None:
        for cell in criterion["cells"]:
            print(
                f"k={cell['threads']} grain={cell['grain_us']}us: "
                f"wall {cell['unbatched_wall_s'] * 1000:.1f}ms -> "
                f"{cell['batched_wall_s'] * 1000:.1f}ms "
                f"(b={cell['batched_batch_size']}), contention "
                f"{cell['unbatched_contention']:.4f} -> "
                f"{cell['batched_contention']:.4f}"
            )
        print(
            "criterion:",
            "PASS" if criterion["passed"] else "FAIL",
            "(batched beats unbatched on wall-clock and contention "
            "at >= 4 threads, fine grain)",
        )

    return finish(args, "lock_contention", cfg, rows, criterion)


if __name__ == "__main__":
    raise SystemExit(main())
