"""Ablation — run-queue discipline and detection latency.

The algorithm requires only at-most-once dequeue; the *order* of the run
queue is a free scheduling policy.  Under a **burst arrival** — all
phases land at once, the crisis-management load shape of Section 1 — the
backlog makes discipline matter.  This benchmark compares FIFO (the
paper's implied BlockingQueue), LIFO, phase-ordered and vertex-ordered
disciplines, plus the phase-barrier baseline, on:

* virtual makespan (throughput), and
* mean / max per-phase **detection latency** (phase start → phase
  complete) — the quantity the motivating applications ("detected
  rapidly", Section 1) actually care about.

All five schedules are verified byte-identical to the serial oracle:
serializability makes scheduling policy a pure performance knob.  (At
sustainably paced arrivals the system drains between phases and every
discipline coincides; the burst is where policy shows.)
"""

from __future__ import annotations

import statistics

from repro.analysis.stats import format_table
from repro.baselines.barrier import barrier_simulated_engine
from repro.core.serial import SerialExecutor
from repro.core.tracer import ExecutionTracer
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.streams.workloads import grid_workload

from .conftest import emit

PHASES = 30
# Burst arrival: the environment injects every phase immediately
# (env_interval = 0), building a real backlog.
COST = CostModel(compute_cost=1.0, bookkeeping_cost=0.02)
DISCIPLINES = ["fifo", "lifo", "low_phase_first", "low_vertex_first"]


def completion_times(tracer: ExecutionTracer):
    """Phase -> completion instant.  The burst arrives at t = 0, so the
    completion instant *is* the arrival-relative detection latency (the
    started-to-completed span would hide queueing for engines that defer
    phase starts, like the barrier)."""
    return {
        ev.pair[1]: ev.time
        for ev in tracer.events
        if ev.kind == "phase_completed"
    }


def run_all():
    prog, phases = grid_workload(4, 4, phases=PHASES, seed=9)
    serial = SerialExecutor(prog).run(phases)
    rows = []
    for disc in DISCIPLINES:
        tracer = ExecutionTracer()
        res = SimulatedEngine(
            prog,
            num_workers=4,
            num_processors=4,
            cost_model=COST,
            tracer=tracer,
            queue_discipline=disc,
        ).run(phases)
        assert res.records == serial.records
        lats = completion_times(tracer)
        rows.append(
            [
                disc,
                res.wall_time,
                statistics.mean(lats.values()),
                max(lats.values()),
            ]
        )
    tracer = ExecutionTracer()
    res = barrier_simulated_engine(
        prog, num_workers=4, num_processors=4, cost_model=COST, tracer=tracer
    ).run(phases)
    assert res.records == serial.records
    lats = completion_times(tracer)
    rows.append(
        ["barrier", res.wall_time, statistics.mean(lats.values()),
         max(lats.values())]
    )
    return rows


def test_ablation_queue_discipline(benchmark):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    emit(
        "Ablation: run-queue discipline under a burst arrival "
        "(4x4 grid, 4 workers, all 30 phases injected at t=0)",
        format_table(
            ["discipline", "makespan", "mean detection latency", "max"],
            rows,
        )
        + "\nall five schedules produce identical records — serializability "
        "turns queue order into a pure performance knob",
    )

    by_name = {r[0]: r for r in rows}
    benchmark.extra_info["mean_latency_fifo"] = by_name["fifo"][2]
    benchmark.extra_info["mean_latency_low_phase"] = by_name["low_phase_first"][2]
    # Draining old phases first minimises mean detection latency among the
    # pipelined disciplines; LIFO/vertex-order starve old phases.
    assert by_name["low_phase_first"][2] <= by_name["fifo"][2] + 1e-9
    assert by_name["low_phase_first"][2] < by_name["lifo"][2]
    assert by_name["low_phase_first"][2] < by_name["low_vertex_first"][2]
    # Throughput stays within a modest band across disciplines.
    makespans = [r[1] for r in rows]
    assert max(makespans) / min(makespans) < 1.5
