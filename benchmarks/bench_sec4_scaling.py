"""Section 4 — the near-linear-speedup prediction.

The paper: "we predict that as long as the computations performed by the
vertices take significantly more time than the computations performed to
maintain the data structures, the speedup will be close to linear in the
number of processors when we use a thread pool containing one computation
thread for each processor."

This benchmark sweeps worker counts 1..8 (one processor per worker plus
one for the environment) at a coarse compute grain and prints the speedup
/ efficiency series; a companion fine-grain sweep shows where the
prediction's precondition fails.
"""

from __future__ import annotations

from repro.simulator.costs import CostModel
from repro.simulator.metrics import SpeedupPoint, speedup_curve
from repro.streams.workloads import grid_workload

from .conftest import emit

WORKERS = [1, 2, 4, 8]


def sweep(cost_model: CostModel):
    prog, phases = grid_workload(8, 4, phases=30, seed=10)
    return speedup_curve(prog, phases, cost_model, WORKERS, processors=lambda k: k + 1)


def test_sec4_scaling_coarse_grain(benchmark):
    coarse = CostModel(compute_cost=50.0, bookkeeping_cost=0.05)
    points = benchmark.pedantic(lambda: sweep(coarse), iterations=1, rounds=2)
    body = SpeedupPoint.header() + "\n" + "\n".join(p.row() for p in points)
    emit(
        "Section 4 prediction: coarse grain (compute/bookkeeping = 1000)",
        body,
    )
    benchmark.extra_info["efficiency_at_8"] = points[-1].efficiency
    assert points[1].speedup > 1.85
    assert points[2].speedup > 3.4
    assert points[-1].efficiency > 0.8  # "close to linear"


def test_sec4_scaling_fine_grain(benchmark):
    fine = CostModel(compute_cost=0.1, bookkeeping_cost=0.05)
    points = benchmark.pedantic(lambda: sweep(fine), iterations=1, rounds=2)
    body = SpeedupPoint.header() + "\n" + "\n".join(p.row() for p in points)
    emit(
        "Section 4 prediction's precondition violated: fine grain "
        "(compute/bookkeeping = 2)",
        body
        + "\nthe globally locked bookkeeping serialises execution (Amdahl), "
        "exactly why the paper qualifies its prediction",
    )
    benchmark.extra_info["efficiency_at_8"] = points[-1].efficiency
    assert points[-1].efficiency < 0.6
