"""Figure 2 — vertex numberings and the sequential-S(v) restriction.

Regenerates the figure's content exactly:

* the satisfactory numbering (b) with its S(v) table and the m-sequence
  [3, 3, 4, 5, 5, 6, 7, 7];
* the unsatisfactory numbering (a), rejected with the paper's witness
  S(2) = {1, 2, 3, 5};

and times the numbering algorithm on the figure graph (the timed kernel)
— see bench_numbering_scale for large-graph throughput.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import format_table
from repro.errors import NumberingError
from repro.graph.generators import fig2_graph, fig2a_numbering, fig2b_numbering
from repro.graph.numbering import Numbering, compute_S, number_graph, verify_numbering

from .conftest import emit


def test_fig2_numbering(benchmark):
    g = fig2_graph()
    nb = benchmark(lambda: number_graph(g))

    # (b): the satisfactory numbering.
    b = Numbering.from_mapping(g, fig2b_numbering())
    rows_b = [
        [f"S({v})", "{" + ", ".join(map(str, sorted(compute_S(g, fig2b_numbering(), v)))) + "}"]
        for v in range(8)
    ]
    # (a): the unsatisfactory numbering.
    rows_a = [
        [f"S({v})", "{" + ", ".join(map(str, sorted(compute_S(g, fig2a_numbering(), v)))) + "}"]
        for v in range(8)
    ]
    with pytest.raises(NumberingError) as rejection:
        verify_numbering(g, fig2a_numbering())

    emit(
        "Figure 2(a): unsatisfactory numbering (vertices 4 and 5 transposed)",
        format_table(["set", "members"], rows_a)
        + f"\nverifier: REJECTED — {rejection.value}",
    )
    emit(
        "Figure 2(b): satisfactory numbering",
        format_table(["set", "members"], rows_b)
        + f"\nverifier: ACCEPTED\nm-sequence m(0..7): {b.m_sequence()}",
    )

    benchmark.extra_info["m_sequence"] = b.m_sequence()

    # Paper values.
    assert b.m_sequence() == [3, 3, 4, 5, 5, 6, 7, 7]
    assert compute_S(g, fig2a_numbering(), 2) == {1, 2, 3, 5}
    # The algorithm's own numbering is also satisfactory.
    verify_numbering(g, nb.index_of)
