"""Figure 1 — pipelined execution of the 10-node graph.

The paper's figure shows the 10-node graph with 5 phases executing
concurrently.  This benchmark runs that exact graph under full load on the
simulated SMP with ample workers and regenerates the series:

    engine      max-concurrent-phases   makespan
    pipelined   5  (== graph depth)     ...
    barrier     1                       ...

plus the phase-concurrency profile over virtual time, and times the
pipelined run.
"""

from __future__ import annotations

from repro.analysis.stats import format_table
from repro.baselines.barrier import barrier_simulated_engine
from repro.core.tracer import (
    ExecutionTracer,
    concurrent_phase_profile,
    max_concurrent_phases,
)
from repro.graph.analysis import max_pipelining_depth
from repro.graph.generators import fig1_graph
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.streams.workloads import fig1_workload

from .conftest import emit

PHASES = 40
COST = CostModel(compute_cost=1.0, bookkeeping_cost=0.001)


def run_pipelined():
    prog, phases = fig1_workload(phases=PHASES)
    tracer = ExecutionTracer()
    result = SimulatedEngine(
        prog, num_workers=10, num_processors=10, cost_model=COST, tracer=tracer
    ).run(phases)
    return result, tracer


def run_barrier():
    prog, phases = fig1_workload(phases=PHASES)
    tracer = ExecutionTracer()
    result = barrier_simulated_engine(
        prog, num_workers=10, num_processors=10, cost_model=COST, tracer=tracer
    ).run(phases)
    return result, tracer


def test_fig1_pipelining(benchmark):
    pipe_result, pipe_tracer = benchmark.pedantic(
        run_pipelined, iterations=1, rounds=3
    )
    barr_result, barr_tracer = run_barrier()

    pipe_depth = max_concurrent_phases(pipe_tracer.intervals())
    barr_depth = max_concurrent_phases(barr_tracer.intervals())
    bound = max_pipelining_depth(fig1_graph())

    rows = [
        ["pipelined (paper)", pipe_depth, bound, pipe_result.wall_time],
        ["phase barrier", barr_depth, bound, barr_result.wall_time],
    ]
    table = format_table(
        ["engine", "max concurrent phases", "depth bound", "virtual makespan"],
        rows,
    )
    profile = concurrent_phase_profile(pipe_tracer.intervals())
    peak_times = [f"{t:.1f}" for t, c in profile if c == pipe_depth][:5]
    emit(
        "Figure 1: 10-node graph, phases in flight",
        table
        + f"\nfirst instants at peak concurrency: {', '.join(peak_times)}"
        + f"\nspeedup over barrier: {barr_result.wall_time / pipe_result.wall_time:.2f}x",
    )

    benchmark.extra_info["max_concurrent_phases"] = pipe_depth
    benchmark.extra_info["barrier_phases"] = barr_depth
    benchmark.extra_info["speedup_over_barrier"] = (
        barr_result.wall_time / pipe_result.wall_time
    )

    # The paper's figure: 5 phases in flight on the depth-5 graph.
    assert pipe_depth == 5
    assert barr_depth == 1
    assert pipe_result.records == barr_result.records
