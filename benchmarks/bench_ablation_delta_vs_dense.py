"""Ablation — Δ-dataflow vs dense messaging (the Section 1 claim).

The paper's money-laundering example: an anomaly detector may emit (1) a
verdict per transaction or (2) only anomalies; "if one in a million
transactions is anomalous then the rate of events generated using the
second option is only a millionth of that generated using the first
option".

This benchmark runs the laundering workload at several anomaly rates in
both modes and prints message/execution counts and their ratios.  (Phase
counts are laptop-scale, so the measured ratios are bounded by the run
length rather than reaching 10^6; the trend — ratio ~ 1/anomaly-rate up
to that bound — is the claim being reproduced.)
"""

from __future__ import annotations

from repro.analysis.stats import format_table, message_rate_summary
from repro.core.serial import SerialExecutor
from repro.models.domains.laundering import build_laundering_workload

from .conftest import emit

PHASES = 1200
BRANCHES = 2
RATES = [0.05, 0.01, 0.002]


def run_rate(rate: float, dense: bool):
    prog, phases = build_laundering_workload(
        phases=PHASES, branches=BRANCHES, anomaly_rate=rate, seed=6, dense=dense
    )
    return SerialExecutor(prog).run(phases)


def test_ablation_delta_vs_dense(benchmark):
    def run_all():
        return [
            (rate, run_rate(rate, dense=False), run_rate(rate, dense=True))
            for rate in RATES
        ]

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    source_msgs = BRANCHES * PHASES  # transaction feeds emit every phase
    rows = []
    for rate, delta, dense in results:
        # The paper's claim concerns the *detector* stage: subtract the
        # (identical) source traffic and case-aggregator traffic to
        # isolate what the detectors emitted.
        agg_msgs = len(delta.records.get("compliance", []))
        det_delta = delta.message_count - source_msgs - agg_msgs
        det_dense = dense.message_count - source_msgs - agg_msgs
        summary = message_rate_summary(delta, dense, PHASES)
        rows.append(
            [
                rate,
                det_delta,
                det_dense,
                det_dense / max(det_delta, 1),
                summary["message_ratio"],
            ]
        )
        # Identical anomaly decisions in both modes.
        assert delta.records == dense.records
        assert det_dense == source_msgs  # option 1: a verdict per input

    emit(
        "Ablation: option-2 (emit anomalies only) vs option-1 (verdict per "
        "transaction)",
        format_table(
            [
                "anomaly rate",
                "detector msgs (delta)",
                "detector msgs (dense)",
                "detector ratio",
                "total msg ratio",
            ],
            rows,
        )
        + "\npaper: for anomaly rate r the option-1/option-2 detector "
        "message-rate ratio is ~1/r "
        "(bounded here by run length; the paper's 10^-6 example gives 10^6)",
    )

    ratios = [r[3] for r in rows]
    benchmark.extra_info["detector_ratios"] = ratios
    # Ratio grows as anomalies get rarer, roughly like 1/rate.
    assert ratios[0] < ratios[1] < ratios[2]
    assert ratios[2] > 25.0
