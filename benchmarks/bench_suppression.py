"""Change suppression (Δ-elision): executed-pair and wall-clock reduction.

A Δ-dataflow engine already skips vertices whose inputs carry *no*
message; change suppression extends the discipline to messages that carry
an *unchanged value*: at commit time an output equal to the edge's latched
value is dropped, the downstream pair is marked determined without being
scheduled, and the elision cascades down any chain of suppressible
vertices.  This benchmark measures that cascade on the two workload
shapes the optimisation targets:

* **stable-value** — re-emitting sources whose value only *moves* every
  k-th phase, feeding depth-D :class:`~repro.models.basic.Identity`
  chains into :class:`~repro.models.basic.ChangeRecorder` sinks.  Between
  moves every chain execution is value-equal busywork.
* **idle-key** — N independent per-key chains where only ~1/8 of the
  keys change value in any phase (the others re-report their previous
  reading) — the idle-key shape of keyed monitoring feeds.

Every row runs three ways: the **unsuppressed serial oracle**, the
parallel engine with suppression **off**, and with suppression **on**
(cone frontier).  Rows record executed pairs, messages, wall time and
the ``stats["suppression"]`` section; both parallel runs are judged
against the oracle — the suppressed one with the elision-aware check
*plus exact record equality*.

Acceptance criterion: every row oracle-equal, and the executed-pairs
ratio (off/on) >= 3x on both workloads.  Wall-clock ratio is reported
but not gated (CI containers make timing gates flaky).

CI smoke::

    python benchmarks/bench_suppression.py --quick

Full run (commits its results as ``BENCH_suppression.json``)::

    python benchmarks/bench_suppression.py --out BENCH_suppression.json
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Tuple

if __package__ in (None, ""):
    from _runner import bootstrap_src, finish, parse_args
else:
    from ._runner import bootstrap_src, finish, parse_args

bootstrap_src()

from repro.analysis.serializability import check_serializable  # noqa: E402
from repro.core.program import Program  # noqa: E402
from repro.core.serial import SerialExecutor  # noqa: E402
from repro.events import PhaseInput  # noqa: E402
from repro.graph.model import ComputationGraph  # noqa: E402
from repro.models.basic import ChangeRecorder, Identity  # noqa: E402
from repro.models.sensors import ReplaySource  # noqa: E402
from repro.runtime.engine import ParallelEngine  # noqa: E402

THREADS = 4
ROUNDS = 3  # wall-time measurement: best of N


def chain_workload(
    name: str,
    value_seqs: Dict[str, List[Any]],
    depth: int,
    phases: int,
) -> Tuple[Program, List[PhaseInput]]:
    """One source -> Identity^depth -> ChangeRecorder chain per key."""
    g = ComputationGraph(name=name)
    behaviors: Dict[str, Any] = {}
    for key, values in value_seqs.items():
        prev = f"src_{key}"
        g.add_vertex(prev)
        behaviors[prev] = ReplaySource(values=values)
        for d in range(depth):
            node = f"id_{key}_{d}"
            g.add_vertex(node)
            g.add_edge(prev, node)
            behaviors[node] = Identity()
            prev = node
        sink = f"rec_{key}"
        g.add_vertex(sink)
        g.add_edge(prev, sink)
        behaviors[sink] = ChangeRecorder()
    program = Program(g, behaviors, name=name)
    return program, [PhaseInput(k, float(k)) for k in range(1, phases + 1)]


def stable_value_seqs(
    keys: int, phases: int, move_every: int, seed: int
) -> Dict[str, List[Any]]:
    """Each source re-emits its value every phase; the value only moves
    every *move_every* phases."""
    rng = random.Random(seed)
    seqs = {}
    for k in range(keys):
        value = float(rng.randrange(100))
        seq = []
        for p in range(phases):
            if p > 0 and p % move_every == 0:
                value = float(rng.randrange(100))
            seq.append(value)
        seqs[f"k{k:02d}"] = seq
    return seqs


def idle_key_seqs(
    keys: int, phases: int, active_one_in: int, seed: int
) -> Dict[str, List[Any]]:
    """Every key reports every phase, but only ~1/active_one_in keys
    change value in a given phase."""
    rng = random.Random(seed)
    seqs = {}
    for k in range(keys):
        value = float(rng.randrange(100))
        seq = []
        for _ in range(phases):
            if rng.randrange(active_one_in) == 0:
                value = float(rng.randrange(100))
            seq.append(value)
        seqs[f"k{k:02d}"] = seq
    return seqs


def timed_run(build, suppress: bool):
    """Best-of-ROUNDS wall time; the last run's result is returned."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        program, phases = build()
        engine = ParallelEngine(
            program, num_threads=THREADS, frontier="cone", suppress=suppress
        )
        t0 = time.perf_counter()
        result = engine.run(phases)
        best = min(best, time.perf_counter() - t0)
    return result, best


def run_workload(label: str, build) -> Dict[str, Any]:
    program, phases = build()
    oracle = SerialExecutor(program).run(phases)

    off, off_time = timed_run(build, suppress=False)
    on, on_time = timed_run(build, suppress=True)

    off_ok = bool(check_serializable(oracle, off))
    on_report = check_serializable(oracle, on, allow_elision=True)
    on_ok = bool(on_report) and on.records == oracle.records

    section = on.stats["suppression"]
    row = {
        "workload": label,
        "phases": len(phases),
        "oracle_executions": oracle.execution_count,
        "executions_off": off.execution_count,
        "executions_on": on.execution_count,
        "messages_off": off.message_count,
        "messages_on": on.message_count,
        "wall_off_s": round(off_time, 4),
        "wall_on_s": round(on_time, 4),
        "executed_pairs_ratio": round(
            off.execution_count / max(1, on.execution_count), 3
        ),
        "wall_clock_ratio": round(off_time / max(1e-9, on_time), 3),
        "suppression": section,
        "oracle_equal_off": off_ok,
        "oracle_equal_on": on_ok,
    }
    print(
        f"{label}: pairs {off.execution_count} -> {on.execution_count} "
        f"({row['executed_pairs_ratio']}x), wall {off_time:.3f}s -> "
        f"{on_time:.3f}s ({row['wall_clock_ratio']}x), "
        f"suppressed={section['suppressed_messages']} "
        f"elided={section['elided_executions']} "
        f"oracle_equal={off_ok and on_ok}"
    )
    return row


def main(argv=None) -> int:
    args = parse_args(
        "Change-suppression executed-pair / wall-clock reduction", argv
    )
    if args.quick:
        config = {
            "stable": {"keys": 4, "phases": 80, "depth": 4, "move_every": 10},
            "idle": {"keys": 8, "phases": 60, "depth": 4, "active_one_in": 8},
        }
    else:
        config = {
            "stable": {"keys": 8, "phases": 500, "depth": 5, "move_every": 10},
            "idle": {"keys": 32, "phases": 300, "depth": 4, "active_one_in": 8},
        }

    s = config["stable"]
    stable_build = lambda: chain_workload(  # noqa: E731
        "stable-value",
        stable_value_seqs(s["keys"], s["phases"], s["move_every"], seed=11),
        s["depth"],
        s["phases"],
    )
    i = config["idle"]
    idle_build = lambda: chain_workload(  # noqa: E731
        "idle-key",
        idle_key_seqs(i["keys"], i["phases"], i["active_one_in"], seed=13),
        i["depth"],
        i["phases"],
    )

    rows = [
        run_workload("stable-value", stable_build),
        run_workload("idle-key", idle_build),
    ]

    min_ratio = min(r["executed_pairs_ratio"] for r in rows)
    all_equal = all(
        r["oracle_equal_off"] and r["oracle_equal_on"] for r in rows
    )
    criterion = {
        "evaluated": True,
        "passed": bool(all_equal and min_ratio >= 3.0),
        "min_executed_pairs_ratio": min_ratio,
        "required_ratio": 3.0,
        "all_rows_oracle_equal": all_equal,
        "wall_clock_ratios": [r["wall_clock_ratio"] for r in rows],
    }
    print(
        f"criterion: min executed-pairs ratio {min_ratio}x "
        f"(need >= 3.0x), oracle-equal={all_equal} -> "
        f"{'PASS' if criterion['passed'] else 'FAIL'}"
    )
    return finish(args, "suppression", config, rows, criterion)


if __name__ == "__main__":
    raise SystemExit(main())
