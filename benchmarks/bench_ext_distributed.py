"""Extension — distributed execution across machines (Section 6).

The paper's future work: "partitioning the computation graph across
multiple machines and replication of event streams to multiple distinct
computation graphs."  Two series:

* **pipeline partitioning** — a deep workload on 1..4 simulated machines
  (fixed per-machine size), makespan + cut traffic vs machine count, with
  a latency-sensitivity row;
* **replication by sinks** — per-replica work vs the monolithic graph.
"""

from __future__ import annotations

from repro.analysis.stats import format_table
from repro.core.serial import SerialExecutor
from repro.distributed import (
    MachineConfig,
    PartitionedProgram,
    SimulatedCluster,
    contiguous_partition,
    replicate_by_sinks,
)
from repro.simulator.costs import CostModel
from repro.streams.workloads import grid_workload

from .conftest import emit

PHASES = 30
COST = CostModel(compute_cost=1.0, bookkeeping_cost=0.02)


def run_cluster(machines: int, latency: float):
    prog, phases = grid_workload(3, 12, phases=PHASES, seed=13)
    serial = SerialExecutor(prog).run(phases)
    pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, machines))
    result = SimulatedCluster(
        pp,
        MachineConfig(num_workers=2, num_processors=2),
        cost_model=COST,
        network_latency=latency,
    ).run(phases)
    assert result.merged_records() == serial.records
    return result


def test_ext_distributed_partitioning(benchmark):
    def sweep():
        return {k: run_cluster(k, latency=0.25) for k in (1, 2, 3, 4)}

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    base = results[1].makespan
    rows = [
        [k, r.makespan, base / r.makespan, r.cut_messages, r.tokens_sent]
        for k, r in sorted(results.items())
    ]
    slow = run_cluster(4, latency=5.0)
    emit(
        "Extension: pipeline partitioning across simulated machines "
        "(3x12 grid, 2 workers x 2 CPUs per machine)",
        format_table(
            ["machines", "makespan", "speedup", "cut msgs", "tokens"], rows
        )
        + f"\n4 machines at 20x latency: makespan {slow.makespan:.1f} "
        f"(vs {results[4].makespan:.1f}) — pipelining hides most of the "
        f"network because tokens overlap with compute",
    )

    benchmark.extra_info["speedup_4_machines"] = base / results[4].makespan
    assert results[2].makespan < results[1].makespan
    assert base / results[4].makespan > 1.8
    # Every run produced identical records (asserted in run_cluster).


def test_ext_replication_by_sinks(benchmark):
    # Sparse wiring: sinks have genuinely distinct ancestor cones, the
    # regime where condition-partitioned replication pays.
    prog, phases = grid_workload(4, 5, phases=PHASES, seed=14, density=0.3)

    def plan_and_run():
        serial = SerialExecutor(prog).run(phases)
        plan = replicate_by_sinks(prog, [[s] for s in prog.graph.sinks()])
        per_replica = []
        for replica, group in zip(plan.replicas, plan.assignments):
            res = SerialExecutor(replica).run(phases)
            for s in group:
                assert res.records.get(s, []) == serial.records.get(s, [])
            per_replica.append((group[0], replica.n, res.execution_count))
        return plan, per_replica, serial

    plan, per_replica, serial = benchmark.pedantic(
        plan_and_run, iterations=1, rounds=1
    )
    rows = [
        [sink, n, execs, n / prog.n]
        for sink, n, execs in per_replica
    ]
    emit(
        "Extension: replication by monitored sink (4x5 grid)",
        format_table(
            ["replica sink", "vertices", "executions", "fraction of graph"],
            rows,
        )
        + f"\nduplication factor {plan.duplication_factor:.2f}x, largest "
        f"replica {plan.max_replica_fraction():.0%} of the monolith — each "
        f"machine monitors its conditions with a fraction of the work",
    )

    benchmark.extra_info["duplication_factor"] = plan.duplication_factor
    assert plan.max_replica_fraction() < 1.0
    assert all(n < prog.n for _s, n, _e in per_replica)
