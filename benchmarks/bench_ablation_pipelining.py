"""Ablation — pipelining vs the phase-barrier solution, by graph shape.

Section 2 rejects "complete execution of one phase before initiating the
next" in favour of pipelining.  The win depends on graph shape: depth
feeds the pipeline, width feeds intra-phase parallelism.  This benchmark
sweeps shapes at fixed total vertex count and prints the makespan ratio
barrier / pipelined — the quantified version of the paper's Section 2
argument.
"""

from __future__ import annotations

from repro.analysis.stats import format_table
from repro.baselines.barrier import barrier_simulated_engine
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.streams.workloads import grid_workload

from .conftest import emit

# (width, depth) at ~16 vertices each.
SHAPES = [(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)]
COST = CostModel(compute_cost=1.0, bookkeeping_cost=0.01)
PHASES = 30
WORKERS = PROCS = 8


def run_shape(width: int, depth: int):
    prog, phases = grid_workload(width, depth, phases=PHASES, seed=20)
    pipe = SimulatedEngine(
        prog, num_workers=WORKERS, num_processors=PROCS, cost_model=COST
    ).run(phases)
    barr = barrier_simulated_engine(
        prog, num_workers=WORKERS, num_processors=PROCS, cost_model=COST
    ).run(phases)
    assert pipe.records == barr.records
    return pipe.wall_time, barr.wall_time


def test_ablation_pipelining_by_shape(benchmark):
    def run_all():
        return [(w, d, *run_shape(w, d)) for w, d in SHAPES]

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = [
        [f"{w}x{d}", w, d, pipe, barr, barr / pipe]
        for w, d, pipe, barr in results
    ]
    emit(
        "Ablation: pipelined vs phase-barrier makespan by graph shape "
        f"({WORKERS} workers, {PROCS} CPUs)",
        format_table(
            ["shape", "width", "depth", "pipelined", "barrier", "barrier/pipelined"],
            rows,
        )
        + "\ndeep graphs gain ~depth; wide-shallow graphs gain little — "
        "pipelining is what makes depth usable parallelism",
    )

    ratio_by_depth = {d: barr / pipe for _w, d, pipe, barr in results}
    benchmark.extra_info["ratio_depth16"] = ratio_by_depth[16]
    benchmark.extra_info["ratio_depth1"] = ratio_by_depth[1]
    assert ratio_by_depth[16] > 3.0  # deep chain: pipelining dominates
    assert ratio_by_depth[1] < 1.6  # flat graph: barrier loses little
    # Monotone trend in depth.
    assert ratio_by_depth[16] > ratio_by_depth[4] > ratio_by_depth[1]
