"""Temporal phase-run coalescing: critical-section and wire-frame
reduction on a serve-style deep pipeline.

Under the cone frontier a deep pipeline accumulates a backlog of *full*
phases per vertex — every one waiting its turn through the scheduler
lock (threaded engine) or its own task frame (process engine).
``claim_run`` hands that backlog out as one run (v, [p..p+k]): members
execute back-to-back, commit through **one** ``complete_executions``
critical section, and — on the process backend — ship as **one**
:class:`~repro.runtime.mp.protocol.RunMsg` frame (ALGORITHM.md §5.7).

The workload is the serve regime this was built for: a long-lived
deep-pipeline computation fed 10^4 phases (full mode), where per-pair
dispatch overhead dominates the tiny per-member compute.  Each engine
runs coalesced (``run_length=None``, adaptive) and single-pair
(``run_length=1``, the pre-coalescing scheduler) and every row is judged
against the serial oracle with **exact record equality** — a scheduler
optimisation that changes observable results is a bug, not a win.

Acceptance criterion:

* every row oracle-equal with records exactly equal to the serial run;
* threaded engine: coalescing cuts scheduler lock acquisitions by
  >= 3x;
* process engine: coalescing cuts coordinator->worker wire round trips
  by >= 2x;
* wall time is reported (min/median/stddev over repeats, after warmup)
  but not gated — on a 1-core container the coalesced and single-pair
  runs serialise onto the same CPU and wall-clock is pure noise; the
  lock- and wire-traffic counters are deterministic and are the actual
  optimisation surface.

CI smoke::

    python benchmarks/bench_coalescing.py --quick

Full run (commits its results as ``BENCH_coalescing.json``)::

    python benchmarks/bench_coalescing.py --out BENCH_coalescing.json
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any, Dict, List

if __package__ in (None, ""):
    from _runner import bootstrap_src, finish, parse_args, timed_repeats
else:
    from ._runner import bootstrap_src, finish, parse_args, timed_repeats

bootstrap_src()

from repro.analysis import check_serializable  # noqa: E402
from repro.core.plan import compile_plan  # noqa: E402
from repro.core.serial import SerialExecutor  # noqa: E402
from repro.runtime.engine import ParallelEngine  # noqa: E402
from repro.runtime.mp import ProcessEngine  # noqa: E402
from repro.streams.workloads import pipeline_workload  # noqa: E402

LOCK_REDUCTION_TARGET = 3.0  # x fewer scheduler lock acquisitions
WIRE_REDUCTION_TARGET = 2.0  # x fewer coordinator->worker round trips

RUN_LENGTHS = (1, None)  # single-pair baseline, then adaptive coalescing

FULL = {
    "threads": 3,
    "workers": 2,
    "repeats": 2,
    "warmup": 1,
    "pipeline": {"depth": 8, "phases": 10_000, "seed": 17},
}
QUICK = {
    "threads": 3,
    "workers": 2,
    "repeats": 1,
    "warmup": 0,
    "pipeline": {"depth": 6, "phases": 250, "seed": 17},
}


def _make_workload(cfg: Dict[str, Any]):
    p = cfg["pipeline"]
    return pipeline_workload(
        depth=p["depth"], phases=p["phases"], seed=p["seed"]
    )


def _run_engine(engine_name: str, run_length, cfg: Dict[str, Any]):
    prog, phases = _make_workload(cfg)
    if engine_name == "parallel":
        engine = ParallelEngine(
            compile_plan(prog),
            num_threads=cfg["threads"],
            frontier="cone",
            run_length=run_length,
        )
    else:
        engine = ProcessEngine(
            prog,
            num_workers=cfg["workers"],
            frontier="cone",
            run_length=run_length,
        )
    start = time.perf_counter()
    result = engine.run(phases)
    return result, time.perf_counter() - start


def _measure(
    engine_name: str, run_length, cfg: Dict[str, Any], serial
) -> Dict[str, Any]:
    result, timing = timed_repeats(
        lambda: _run_engine(engine_name, run_length, cfg),
        repeats=cfg["repeats"],
        warmup=cfg["warmup"],
    )
    coalescing = result.stats["coalescing"]
    return {
        "engine": engine_name,
        "engine_label": result.engine,
        "run_length": "adaptive" if run_length is None else run_length,
        "wall_time_s": timing["min_s"],
        "timing": timing,
        "member_executions": result.execution_count,
        "runs_scheduled": coalescing["runs_scheduled"],
        "pairs_coalesced": coalescing["pairs_coalesced"],
        "mean_run_length": coalescing["mean_run_length"],
        "lock_acquisitions": result.stats["lock"].get(
            "acquisitions", result.stats["lock"].get("total_requests")
        ),
        "ipc_round_trips": result.stats.get("ipc_round_trips"),
        "records_equal": result.records == serial.records,
        "oracle_equal": bool(check_serializable(serial, result)),
    }


def check_criterion(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    out: Dict[str, Any] = {"evaluated": True, "checks": []}
    passed = True

    def by(engine: str, run_length):
        return next(
            (
                r
                for r in rows
                if r["engine"] == engine and r["run_length"] == run_length
            ),
            None,
        )

    for row in rows:
        ok = row["oracle_equal"] and row["records_equal"]
        if not ok:
            out["checks"].append(
                {
                    "check": "oracle_equal",
                    "row": f"{row['engine']}[rl={row['run_length']}]",
                    "passed": False,
                }
            )
            passed = False

    for engine, metric, target in (
        ("parallel", "lock_acquisitions", LOCK_REDUCTION_TARGET),
        ("process", "ipc_round_trips", WIRE_REDUCTION_TARGET),
    ):
        single = by(engine, 1)
        coalesced = by(engine, "adaptive")
        if single is None or coalesced is None:
            out["checks"].append(
                {"check": "rows_present", "row": engine, "passed": False}
            )
            passed = False
            continue
        before, after = single[metric], coalesced[metric]
        ratio = before / max(1, after)
        ok = ratio >= target
        out["checks"].append(
            {
                "check": f"{metric}_reduction",
                "row": engine,
                "before": before,
                "after": after,
                "reduction_x": ratio,
                "target_x": target,
                "passed": ok,
            }
        )
        passed = passed and ok
        # The baseline row must not have coalesced anything: run_length=1
        # is the pre-coalescing scheduler, frame for frame.
        baseline_ok = single["pairs_coalesced"] == 0
        out["checks"].append(
            {
                "check": "single_pair_is_baseline",
                "row": engine,
                "passed": baseline_ok,
            }
        )
        passed = passed and baseline_ok
    out["passed"] = passed
    return out


def main(argv=None) -> int:
    args = parse_args(
        "Temporal run coalescing: lock acquisitions, wire round trips "
        "and wall time, coalesced vs single-pair",
        argv,
    )
    cfg = QUICK if args.quick else FULL
    prog, phases = _make_workload(cfg)
    serial = SerialExecutor(prog).run(phases)
    rows: List[Dict[str, Any]] = []
    for engine_name in ("parallel", "process"):
        for run_length in RUN_LENGTHS:
            row = _measure(engine_name, run_length, cfg, serial)
            rows.append(row)
            print(
                f"{engine_name:>8s} rl={str(row['run_length']):>8s} "
                f"runs={row['runs_scheduled']:6d} "
                f"coalesced={row['pairs_coalesced']:6d} "
                f"mean={row['mean_run_length']:5.1f} "
                f"lock={row['lock_acquisitions']:7d} "
                f"ipc={str(row['ipc_round_trips']):>6s} "
                f"wall={row['wall_time_s']:.3f}s "
                f"oracle_equal={row['oracle_equal']}"
            )
    criterion = check_criterion(rows)
    config = dict(
        cfg,
        platform=platform.platform(),
        cpu_count=os.cpu_count(),
    )
    return finish(args, "coalescing", config, rows, criterion)


if __name__ == "__main__":
    raise SystemExit(main())
