"""Ablation — numbering-algorithm cost at scale (Section 3.1.1).

The restricted numbering is computed once per graph; this benchmark shows
it is O(N + E) in practice by timing FIFO-Kahn numbering + verification on
random DAGs up to 50k vertices and printing the throughput series.
"""

from __future__ import annotations

import time

from repro.analysis.stats import format_table
from repro.graph.generators import layered_graph
from repro.graph.numbering import number_graph, verify_numbering

from .conftest import emit

SIZES = [1_000, 5_000, 20_000, 50_000]


def build(n: int):
    width = max(10, n // 200)
    depth = max(2, n // width)
    return layered_graph([width] * depth, density=min(1.0, 40 / width), seed=n)


def test_numbering_scale(benchmark):
    graphs = {n: build(n) for n in SIZES}

    def number_largest():
        return number_graph(graphs[SIZES[-1]])

    nb = benchmark.pedantic(number_largest, iterations=1, rounds=3)
    verify_numbering(nb.graph, nb.index_of)

    rows = []
    for n, g in graphs.items():
        start = time.perf_counter()
        local_nb = number_graph(g)
        verify_numbering(g, local_nb.index_of)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                g.num_vertices,
                g.num_edges,
                elapsed * 1000,
                g.num_vertices / elapsed / 1e6,
            ]
        )
    emit(
        "Numbering + verification throughput on layered random DAGs",
        format_table(
            ["vertices", "edges", "time (ms)", "Mvertex/s"],
            rows,
        ),
    )
    benchmark.extra_info["largest_vertices"] = graphs[SIZES[-1]].num_vertices

    # Near-linear scaling: time per (vertex + edge) must not blow up with
    # size (the generator's edges-per-vertex grows with n, so normalise by
    # N + E, the algorithm's actual input size).
    per_unit = [r[2] / (r[0] + r[1]) for r in rows]
    assert per_unit[-1] < per_unit[0] * 5
