"""Ablation — numbering-algorithm cost at scale (Section 3.1.1).

The restricted numbering is computed once per graph; this benchmark shows
it is O(N + E) in practice by timing FIFO-Kahn numbering + verification on
random layered DAGs up to 50k vertices and printing the throughput series.

Acceptance criterion: near-linear scaling — the per-(vertex+edge) time of
the largest graph stays within 5x of the smallest's (the generator's
edges-per-vertex grows with size, so cost is normalised by N + E, the
algorithm's actual input size).

CI smoke::

    python benchmarks/bench_numbering_scale.py --quick

Full run (commits its results as ``BENCH_numbering_scale.json``)::

    python benchmarks/bench_numbering_scale.py --out BENCH_numbering_scale.json
"""

from __future__ import annotations

import time

if __package__ in (None, ""):
    from _runner import bootstrap_src, finish, parse_args
else:
    from ._runner import bootstrap_src, finish, parse_args

bootstrap_src()

from repro.analysis.stats import format_table  # noqa: E402
from repro.graph.generators import layered_graph  # noqa: E402
from repro.graph.numbering import number_graph, verify_numbering  # noqa: E402


def build(n: int):
    width = max(10, n // 200)
    depth = max(2, n // width)
    return layered_graph([width] * depth, density=min(1.0, 40 / width), seed=n)


def main(argv=None) -> int:
    args = parse_args("Numbering-algorithm cost at scale", argv)
    sizes = [1_000, 5_000] if args.quick else [1_000, 5_000, 20_000, 50_000]
    config = {"sizes": sizes, "generator": "layered_graph"}

    rows = []
    for n in sizes:
        g = build(n)
        start = time.perf_counter()
        nb = number_graph(g)
        verify_numbering(g, nb.index_of)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "vertices": g.num_vertices,
                "edges": g.num_edges,
                "time_ms": round(elapsed * 1000, 3),
                "mvertex_per_s": round(g.num_vertices / elapsed / 1e6, 4),
                "us_per_unit": round(elapsed * 1e6 / (g.num_vertices + g.num_edges), 4),
            }
        )
    print(
        format_table(
            ["vertices", "edges", "time (ms)", "Mvertex/s", "us/(N+E)"],
            [
                [r["vertices"], r["edges"], r["time_ms"],
                 r["mvertex_per_s"], r["us_per_unit"]]
                for r in rows
            ],
        )
    )

    per_unit = [r["us_per_unit"] for r in rows]
    criterion = {
        "evaluated": True,
        "passed": bool(per_unit[-1] < per_unit[0] * 5),
        "us_per_unit_smallest": per_unit[0],
        "us_per_unit_largest": per_unit[-1],
        "allowed_ratio": 5.0,
    }
    print(f"criterion: {'PASS' if criterion['passed'] else 'FAIL'}")
    return finish(args, "numbering_scale", config, rows, criterion)


if __name__ == "__main__":
    raise SystemExit(main())
