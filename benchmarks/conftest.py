"""Shared benchmark helpers.

Every benchmark prints the table or series the paper reports (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and stores the
headline numbers in ``benchmark.extra_info`` so they survive in the
pytest-benchmark JSON output.
"""

from __future__ import annotations

import sys


def emit(title: str, body: str) -> None:
    """Print a labelled result block (visible with -s; kept in captured
    output otherwise)."""
    bar = "=" * len(title)
    sys.stdout.write(f"\n{title}\n{bar}\n{body}\n")
