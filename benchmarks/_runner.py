"""Shared scaffolding for the standalone benchmark scripts.

The pytest-benchmark suites in this directory run under pytest; the
standalone scripts (``bench_lock_contention.py``, ``bench_mp_speedup.py``)
are plain ``python benchmarks/bench_X.py`` programs so CI can smoke them
cheaply and the full runs can commit their results as ``BENCH_X.json``.
This module factors out what every standalone script repeats:

* ``bootstrap_src()`` — make ``repro`` importable without an install;
* ``make_parser()`` / ``parse_args()`` — the common ``--quick`` / ``--out``
  interface (scripts add their own flags via a callback);
* ``timed_repeats()`` — warmup-then-measure repetition with
  min/median/stddev reporting (every timed row shares the shape);
* ``finish()`` — JSON result writing plus the pass/fail exit code.

Result files share the envelope::

    {"benchmark": <name>, "mode": "quick"|"full", "config": {...},
     "rows": [...], "criterion": {...} | null}

where ``criterion`` carries the acceptance verdict (``passed`` plus
whatever evidence the script records), or ``null`` when not evaluated
(quick mode, or hardware that cannot express the criterion — see
``bench_mp_speedup.py``).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "bootstrap_src",
    "make_parser",
    "parse_args",
    "timed_repeats",
    "write_results",
    "finish",
]


def bootstrap_src() -> None:
    """Put ``<repo>/src`` on sys.path so the scripts run from a checkout."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def make_parser(
    description: str,
    extra_args: Optional[Callable[[argparse.ArgumentParser], None]] = None,
) -> argparse.ArgumentParser:
    """The common CLI: ``--quick`` and ``--out`` plus script extras."""
    ap = argparse.ArgumentParser(description=description)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="tiny configuration for CI smoke (seconds, not minutes)",
    )
    ap.add_argument("--out", type=Path, help="write results as JSON here")
    if extra_args is not None:
        extra_args(ap)
    return ap


def parse_args(
    description: str,
    argv: Optional[Sequence[str]] = None,
    extra_args: Optional[Callable[[argparse.ArgumentParser], None]] = None,
) -> argparse.Namespace:
    return make_parser(description, extra_args).parse_args(argv)


def timed_repeats(
    run: Callable[[], Tuple[Any, float]],
    repeats: int = 3,
    warmup: int = 1,
) -> Tuple[Any, Dict[str, Any]]:
    """Warmup-then-measure repetition for one benchmark row.

    *run* performs one full iteration and returns ``(value, elapsed_s)``
    — the caller times exactly the section it cares about (engine run,
    not workload construction).  The first *warmup* iterations are
    discarded (they pay for import caches, thread/process pool spin-up
    and allocator warm state), then *repeats* iterations are recorded.

    Returns ``(value, timing)`` where *value* is the fastest measured
    iteration's value (best-of is the least noise-sensitive summary for
    counters, which do not vary across iterations) and *timing* is::

        {"min_s": ..., "median_s": ..., "stddev_s": ...,
         "samples_s": [...], "repeats": N, "warmup": W}

    ``stddev_s`` is 0.0 for a single repeat.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        run()
    best_value: Any = None
    samples: List[float] = []
    for _ in range(repeats):
        value, elapsed = run()
        if not samples or elapsed < min(samples):
            best_value = value
        samples.append(elapsed)
    timing = {
        "min_s": min(samples),
        "median_s": statistics.median(samples),
        "stddev_s": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "samples_s": samples,
        "repeats": repeats,
        "warmup": warmup,
    }
    return best_value, timing


def write_results(out: Optional[Path], payload: Dict[str, Any]) -> None:
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")


def finish(
    args: argparse.Namespace,
    benchmark: str,
    config: Dict[str, Any],
    rows: List[Dict[str, Any]],
    criterion: Optional[Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> int:
    """Assemble the shared payload envelope, write it, return exit code.

    Exit code is 1 only when a criterion was evaluated and failed;
    an unevaluated criterion (quick mode / unsuitable hardware) exits 0.
    """
    payload: Dict[str, Any] = {
        "benchmark": benchmark,
        "mode": "quick" if args.quick else "full",
        "config": config,
        "rows": rows,
        "criterion": criterion,
    }
    if extra:
        payload.update(extra)
    write_results(args.out, payload)
    if criterion is not None and criterion.get("evaluated", True):
        return 0 if criterion.get("passed", False) else 1
    return 0
