"""Process-engine IPC overhead: the batched wire path vs one frame per pair.

PR 3's process backend ships exactly one task frame and one result frame
per vertex-phase execution — correct, but the coordinator pays a full
pickle + queue round trip per pair, which dominates wall time whenever
vertex compute is cheap.  The batched wire path amortises that cost:
``ipc_batch > 1`` drains the ready backlog into per-worker
``TaskBatch`` frames (answered by one ``ResultBatch`` each), with
repeated payload values interned so a frame pickles them once, while the
adaptive credit window keeps the backlog deep enough for full frames to
form.

This benchmark measures the before/after on two workloads:

* ``cpu_heavy`` — the wide grid of ``cpu_heavy_workload`` at a small
  spin grain, the IPC-bound regime the batching targets;
* ``laundering`` — the stateful anomaly-detection program of
  :mod:`repro.models.domains.laundering`, whose repetitive transaction
  payloads are where interning and delta state sync pay off.

Every configuration is judged against the serial oracle
(``oracle_equal`` per row) — a wire path that loses or reorders results
is not an optimisation.

Acceptance criterion (full mode): at ``ipc_batch=8`` the task-frame
count (``ipc_round_trips``) drops by at least 4x on both workloads, the
total serialization bytes on the stateful (laundering) workload shrink
vs the one-frame-per-pair path, and every row stays oracle-equal.
Quick mode (the CI smoke) checks the structural property instead:
``ipc_round_trips < executions`` whenever ``ipc_batch > 1``, still with
oracle equality.

CI smoke::

    python benchmarks/bench_ipc_overhead.py --quick

Full run (commits its results as ``BENCH_ipc_overhead.json``)::

    python benchmarks/bench_ipc_overhead.py --out BENCH_ipc_overhead.json
"""

from __future__ import annotations

import os
import platform
from typing import Any, Dict, List, Optional

if __package__ in (None, ""):
    from _runner import bootstrap_src, finish, parse_args
else:
    from ._runner import bootstrap_src, finish, parse_args

bootstrap_src()

from repro.analysis import check_serializable  # noqa: E402
from repro.core.serial import SerialExecutor  # noqa: E402
from repro.models.domains.laundering import (  # noqa: E402
    build_laundering_workload,
)
from repro.runtime.mp import ProcessEngine  # noqa: E402
from repro.streams.workloads import cpu_heavy_workload  # noqa: E402

ROUND_TRIP_TARGET = 4.0  # x reduction in task frames at ipc_batch=8
CRITERION_IPC_BATCH = 8

FULL = {
    "workers": 2,
    "batch_size": 4,
    "ipc_batches": [1, 2, 8],
    "cpu_heavy": {"width": 8, "depth": 2, "phases": 40, "grain": 200},
    "laundering": {"phases": 300, "branches": 8},
}
QUICK = {
    "workers": 2,
    "batch_size": 4,
    "ipc_batches": [1, 4],
    "cpu_heavy": {"width": 4, "depth": 2, "phases": 8, "grain": 100},
    "laundering": {"phases": 30, "branches": 4},
}


def _workloads(cfg: Dict[str, Any]):
    ch = cfg["cpu_heavy"]
    la = cfg["laundering"]
    return {
        "cpu_heavy": lambda: cpu_heavy_workload(
            width=ch["width"],
            depth=ch["depth"],
            phases=ch["phases"],
            grain=ch["grain"],
            seed=13,
        ),
        "laundering": lambda: build_laundering_workload(
            phases=la["phases"], branches=la["branches"], seed=11
        ),
    }


def _measure(
    make_workload, workload_name: str, cfg: Dict[str, Any], ipc_batch: int
) -> Dict[str, Any]:
    prog, phases = make_workload()
    serial = SerialExecutor(prog).run(phases)
    prog, phases = make_workload()
    result = ProcessEngine(
        prog,
        num_workers=cfg["workers"],
        batch_size=cfg["batch_size"],
        ipc_batch=ipc_batch,
    ).run(phases)
    wire = result.stats["serialization_bytes"]
    return {
        "workload": workload_name,
        "engine": result.engine,
        "ipc_batch": ipc_batch,
        "executions": result.execution_count,
        "wall_time_s": result.wall_time,
        "ipc_round_trips": result.stats["ipc_round_trips"],
        "serialization_bytes": wire,
        "total_bytes": wire["total_bytes"],
        "task_bytes": wire["tasks"]["bytes"] + wire["task_batches"]["bytes"],
        "result_bytes": (
            wire["results"]["bytes"] + wire["result_batches"]["bytes"]
        ),
        "mean_tasks_per_frame": result.stats["ipc"]["mean_tasks_per_frame"],
        "window": result.stats["ipc"]["window_final"],
        "interning": result.stats["ipc"]["interning"],
        "oracle_equal": bool(check_serializable(serial, result)),
    }


def check_criterion(
    rows: List[Dict[str, Any]], quick: bool
) -> Dict[str, Any]:
    out: Dict[str, Any] = {"evaluated": True, "checks": []}
    passed = True

    def by(workload: str, ipc: int) -> Optional[Dict[str, Any]]:
        return next(
            (
                r
                for r in rows
                if r["workload"] == workload and r["ipc_batch"] == ipc
            ),
            None,
        )

    for row in rows:
        if not row["oracle_equal"]:
            out["checks"].append(
                {
                    "check": "oracle_equal",
                    "row": f"{row['workload']}[ipc={row['ipc_batch']}]",
                    "passed": False,
                }
            )
            passed = False
    if quick:
        # The CI smoke's structural property: batching actually batches.
        for row in rows:
            if row["ipc_batch"] > 1:
                ok = row["ipc_round_trips"] < row["executions"]
                out["checks"].append(
                    {
                        "check": "round_trips_below_executions",
                        "row": f"{row['workload']}[ipc={row['ipc_batch']}]",
                        "ipc_round_trips": row["ipc_round_trips"],
                        "executions": row["executions"],
                        "passed": ok,
                    }
                )
                passed = passed and ok
        out["passed"] = passed
        return out
    workloads = sorted({r["workload"] for r in rows})
    for workload in workloads:
        before = by(workload, 1)
        after = by(workload, CRITERION_IPC_BATCH)
        if before is None or after is None:
            out["checks"].append(
                {"check": "rows_present", "row": workload, "passed": False}
            )
            passed = False
            continue
        ratio = before["ipc_round_trips"] / max(1, after["ipc_round_trips"])
        ok = ratio >= ROUND_TRIP_TARGET
        out["checks"].append(
            {
                "check": "round_trip_reduction",
                "row": workload,
                "before": before["ipc_round_trips"],
                "after": after["ipc_round_trips"],
                "reduction_x": ratio,
                "target_x": ROUND_TRIP_TARGET,
                "passed": ok,
            }
        )
        passed = passed and ok
    before = by("laundering", 1)
    after = by("laundering", CRITERION_IPC_BATCH)
    if before is not None and after is not None:
        ok = after["total_bytes"] < before["total_bytes"]
        out["checks"].append(
            {
                "check": "stateful_bytes_reduced",
                "row": "laundering",
                "before_bytes": before["total_bytes"],
                "after_bytes": after["total_bytes"],
                "reduction_pct": 100.0
                * (1 - after["total_bytes"] / before["total_bytes"]),
                "passed": ok,
            }
        )
        passed = passed and ok
    out["passed"] = passed
    return out


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(__doc__.splitlines()[0], argv)
    cfg = QUICK if args.quick else FULL

    rows: List[Dict[str, Any]] = []
    for workload_name, make_workload in _workloads(cfg).items():
        for ipc_batch in cfg["ipc_batches"]:
            row = _measure(make_workload, workload_name, cfg, ipc_batch)
            rows.append(row)
            print(
                f"{workload_name:<10} ipc={ipc_batch:<2} "
                f"round_trips={row['ipc_round_trips']:>5} "
                f"(executions={row['executions']}) "
                f"bytes={row['total_bytes']:>9} "
                f"wall={row['wall_time_s'] * 1000:8.1f}ms "
                f"oracle={'ok' if row['oracle_equal'] else 'DIVERGED'}"
            )

    criterion = check_criterion(rows, args.quick)
    for check in criterion["checks"]:
        verdict = "PASS" if check["passed"] else "FAIL"
        detail = {
            k: v
            for k, v in check.items()
            if k not in ("check", "row", "passed")
        }
        print(f"criterion[{check['check']}] {check['row']}: {verdict} {detail}")

    hardware = {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    return finish(
        args,
        "ipc_overhead",
        cfg,
        rows,
        criterion,
        extra={"hardware": hardware},
    )


if __name__ == "__main__":
    raise SystemExit(main())
