"""Ablation — edge-history memory vs pipelining freedom.

Pipelining lets a producer run many phases ahead of a slow consumer;
every un-consumed phase leaves an entry in the edge's history buffer
(Section 3.1's "use previous values" semantics requires keeping them).
The paper's unthrottled environment therefore buys maximum pipelining at
memory proportional to the phase backlog; the engine's optional
``max_in_flight_phases`` flow control bounds it.

This benchmark runs a head-fast / tail-slow pipeline on the simulated
engine and sweeps the in-flight bound, printing peak buffered edge
entries against makespan — the memory/throughput trade.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.stats import format_table
from repro.core.program import Program
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.streams.generators import phase_signals
from repro.streams.workloads import sum_behaviors
from repro.graph.generators import chain_graph

from .conftest import emit

PHASES = 120
BOUNDS = [1, 2, 4, 8, None]  # None = the paper's unthrottled environment


def slow_tail_cost(name: str, phase: int) -> float:
    # The sink is 10x slower than the rest: the head races ahead.
    return 10.0 if name == "v5" else 1.0


def run_bound(bound: Optional[int]):
    g = chain_graph(5)
    prog = Program(g, sum_behaviors(g, seed=5))
    return SimulatedEngine(
        prog,
        num_workers=4,
        num_processors=4,
        cost_model=CostModel(compute_cost=slow_tail_cost, bookkeeping_cost=0.01),
        max_in_flight_phases=bound,
    ).run(phase_signals(PHASES))


def test_ablation_edge_memory(benchmark):
    def sweep():
        return [(bound, run_bound(bound)) for bound in BOUNDS]

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    reference = results[-1][1]
    rows = []
    for bound, res in results:
        assert res.records == reference.records  # flow control is pure policy
        rows.append(
            [
                "unbounded" if bound is None else bound,
                res.stats["edge_entries_peak"],
                res.wall_time,
            ]
        )
    emit(
        "Ablation: in-flight phase bound vs peak buffered edge entries "
        "(5-stage pipeline, 10x slower sink, 120 phases)",
        format_table(
            ["max in-flight phases", "peak edge entries", "makespan"], rows
        )
        + "\nunbounded pipelining buffers ~the whole backlog on the slow "
        "edge; a small bound caps memory at ~bound entries per edge while "
        "the slow stage still pins the makespan",
    )

    by_bound = {r[0]: r for r in rows}
    benchmark.extra_info["peak_unbounded"] = by_bound["unbounded"][1]
    benchmark.extra_info["peak_bound2"] = by_bound[2][1]
    # Memory grows with freedom...
    assert by_bound["unbounded"][1] > by_bound[2][1] * 3
    # ...while a bound of just 2 already matches unbounded throughput (the
    # slow stage pins the pipeline) — only the full barrier (bound 1)
    # sacrifices the phase overlap and pays ~40% more makespan.
    assert by_bound[2][2] <= by_bound["unbounded"][2] * 1.05
    assert by_bound[1][2] > by_bound[2][2] * 1.2
    # Peaks are monotone in the bound.
    peaks = [by_bound[b][1] for b in (1, 2, 4, 8)]
    assert all(a <= b for a, b in zip(peaks, peaks[1:]))