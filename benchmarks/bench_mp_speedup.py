"""Process-engine speedup: true parallelism past the GIL.

The paper's measured speedup (Section 4, 1.87x at 2 processors) assumes
the k computation processors genuinely run vertex computations
concurrently.  CPython's GIL breaks that assumption for pure-Python
vertices: the threaded engine (``--engine parallel``) serialises them,
so its "speedup" on CPU-bound work is bounded by 1 regardless of k.
The process backend (``--engine process``) is the repo's answer — this
benchmark measures whether it delivers.

It runs the same CPU-bound workload (``cpu_heavy_workload``: every inner
vertex spins a fixed arithmetic grain per execution) through

* the serial oracle (the 1-processor baseline),
* the threaded engine at k threads (GIL-bound), and
* the process engine at k workers (true parallelism),

and reports wall-clock plus the process engine's IPC accounting
(``serialization_bytes``, ``ipc_round_trips``, per-worker utilization).

Acceptance criterion: at 4 workers the process engine beats the threaded
engine by > 1.5x wall-clock on this workload.  **Hardware caveat**: the
criterion only makes sense with real cores to run on — a 1-core
container executes the 4 worker processes sequentially, and a 2-core CI
runner caps the theoretical speedup near 2 (minus coordinator overhead).
The script therefore records ``hardware`` (cpu count) in its output and
only *evaluates* the criterion when at least 2 cores are present; below
that it reports ``evaluated: false`` with the caveat, and exits 0.

CI smoke::

    python benchmarks/bench_mp_speedup.py --quick

Full run (commits its results as ``BENCH_mp_speedup.json``)::

    python benchmarks/bench_mp_speedup.py --out BENCH_mp_speedup.json
"""

from __future__ import annotations

import os
import platform
import statistics
from typing import Any, Dict, List, Optional

if __package__ in (None, ""):
    from _runner import bootstrap_src, finish, parse_args
else:
    from ._runner import bootstrap_src, finish, parse_args

bootstrap_src()

from repro.core.serial import SerialExecutor  # noqa: E402
from repro.runtime.engine import ParallelEngine  # noqa: E402
from repro.runtime.mp import ProcessEngine  # noqa: E402
from repro.streams.workloads import cpu_heavy_workload  # noqa: E402

SPEEDUP_TARGET = 1.5
CRITERION_WORKERS = 4
MIN_CORES_TO_EVALUATE = 2

FULL = {
    "width": 4,
    "depth": 4,
    "phases": 40,
    "grain": 20_000,
    "batch_size": 8,
    "ipc_batch": 8,
    "workers": [1, 2, 4],
    "reps": 3,
}
QUICK = {
    "width": 3,
    "depth": 2,
    "phases": 8,
    "grain": 2_000,
    "batch_size": 4,
    "ipc_batch": 4,
    "workers": [2],
    "reps": 1,
}


def _workload(cfg: Dict[str, Any]):
    return cpu_heavy_workload(
        width=cfg["width"],
        depth=cfg["depth"],
        phases=cfg["phases"],
        grain=cfg["grain"],
        seed=13,
    )


def _measure(cfg: Dict[str, Any], make_engine, label: str) -> Dict[str, Any]:
    prog, phases = _workload(cfg)
    walls: List[float] = []
    last = None
    for _ in range(cfg["reps"]):
        last = make_engine(prog).run(phases)
        walls.append(last.wall_time)
    assert last is not None
    row: Dict[str, Any] = {
        "engine": last.engine,
        "label": label,
        "executions": last.execution_count,
        "wall_time_s": statistics.median(walls),
        "wall_times_s": walls,
    }
    if label.startswith("process"):
        row["ipc_round_trips"] = last.stats["ipc_round_trips"]
        row["serialization_bytes"] = last.stats["serialization_bytes"]
        row["per_worker_utilization"] = last.stats["per_worker_utilization"]
        row["ipc"] = last.stats["ipc"]
    return row


def check_criterion(
    rows: List[Dict[str, Any]], cpu_count: int
) -> Dict[str, Any]:
    """Process engine > 1.5x faster than the threaded engine at 4 workers
    — evaluated only on hardware with cores to parallelise over."""
    caveat = (
        f"criterion needs >= {MIN_CORES_TO_EVALUATE} cores "
        f"(ideally >= {CRITERION_WORKERS}) to be meaningful; "
        f"this host has {cpu_count}: worker processes time-slice one "
        f"core, so wall-clock speedup over the threaded engine is not "
        f"expressible here"
    )
    thread_row = next(
        (r for r in rows if r["label"] == f"parallel[{CRITERION_WORKERS}]"),
        None,
    )
    process_row = next(
        (r for r in rows if r["label"] == f"process[{CRITERION_WORKERS}]"),
        None,
    )
    if thread_row is None or process_row is None:
        return {
            "evaluated": False,
            "reason": f"no {CRITERION_WORKERS}-worker rows in this mode",
        }
    speedup = thread_row["wall_time_s"] / process_row["wall_time_s"]
    out: Dict[str, Any] = {
        "workers": CRITERION_WORKERS,
        "target_speedup": SPEEDUP_TARGET,
        "threaded_wall_s": thread_row["wall_time_s"],
        "process_wall_s": process_row["wall_time_s"],
        "speedup_vs_threaded": speedup,
    }
    if cpu_count < MIN_CORES_TO_EVALUATE:
        out.update({"evaluated": False, "hardware_caveat": caveat})
        return out
    out.update(
        {
            "evaluated": True,
            "passed": speedup > SPEEDUP_TARGET,
        }
    )
    if cpu_count < CRITERION_WORKERS:
        out["hardware_note"] = (
            f"only {cpu_count} cores for {CRITERION_WORKERS} workers: "
            f"theoretical ceiling is ~{cpu_count}x"
        )
    return out


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(__doc__.splitlines()[0], argv)
    cfg = QUICK if args.quick else FULL
    cpu_count = os.cpu_count() or 1

    rows: List[Dict[str, Any]] = []

    def run(make_engine, label: str) -> None:
        row = _measure(cfg, make_engine, label)
        rows.append(row)
        print(
            f"{row['engine']:<22} wall={row['wall_time_s'] * 1000:9.1f}ms "
            f"({row['executions']} executions)"
        )

    run(lambda prog: SerialExecutor(prog), "serial")
    for k in cfg["workers"]:
        run(
            lambda prog, k=k: ParallelEngine(
                prog, num_threads=k, batch_size=cfg["batch_size"]
            ),
            f"parallel[{k}]",
        )
    for k in cfg["workers"]:
        run(
            lambda prog, k=k: ProcessEngine(
                prog, num_workers=k, batch_size=cfg["batch_size"]
            ),
            f"process[{k}]",
        )
    # The batched wire path (ipc_batch > 1): same workload, fewer and
    # fatter frames — how much of the process engine's overhead is IPC.
    for k in cfg["workers"]:
        run(
            lambda prog, k=k: ProcessEngine(
                prog,
                num_workers=k,
                batch_size=cfg["batch_size"],
                ipc_batch=cfg["ipc_batch"],
            ),
            f"process_ipc[{k}]",
        )

    criterion = check_criterion(rows, cpu_count)
    if criterion.get("evaluated"):
        verdict = "PASS" if criterion["passed"] else "FAIL"
        print(
            f"criterion: {verdict} — process/threaded speedup "
            f"{criterion['speedup_vs_threaded']:.2f}x at "
            f"{CRITERION_WORKERS} workers "
            f"(target > {SPEEDUP_TARGET}x, {cpu_count} cores)"
        )
    else:
        print(
            f"criterion: NOT EVALUATED — "
            f"{criterion.get('hardware_caveat') or criterion.get('reason')}"
        )

    hardware = {
        "cpu_count": cpu_count,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    return finish(
        args, "mp_speedup", cfg, rows, criterion, extra={"hardware": hardware}
    )


if __name__ == "__main__":
    raise SystemExit(main())
