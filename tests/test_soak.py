"""Soak tests: repeated concurrent runs hunting for races.

The threaded engine's correctness depends on the single-lock discipline;
these tests hammer it with varied thread counts and workload shapes,
comparing every run against the serial oracle.  Runtimes are kept modest
(the suite stays seconds, not minutes) while still cycling enough
schedules to surface ordering bugs — historically the fig1 + 4-thread
combination flushed out queue-close races during development.

Every workload is explicitly seeded, so a failure reproduces from the
test name alone.  The suite is marked ``soak`` and excluded from the
default (tier-1) run — select it with ``pytest -m soak``.  For targeted,
*deterministic* schedule exploration of the same engine, see
``tests/testing`` and ``repro fuzz``.
"""

import pytest

pytestmark = pytest.mark.soak

from repro.analysis.serializability import assert_serializable
from repro.core.invariants import InvariantChecker
from repro.core.serial import SerialExecutor
from repro.models.domains import build_crisis_workload
from repro.runtime.engine import ParallelEngine
from repro.runtime.environment import EnvironmentConfig
from repro.streams.workloads import fanin_workload, fig1_workload, pipeline_workload


class TestSoak:
    @pytest.mark.parametrize("trial", range(8))
    def test_repeated_fig1_runs(self, trial):
        prog, phases = fig1_workload(phases=30, seed=trial)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=4).run(phases)
        assert_serializable(serial, par)

    @pytest.mark.parametrize("threads", [1, 2, 3, 4, 6, 8])
    def test_thread_count_sweep(self, threads):
        prog, phases = pipeline_workload(depth=6, phases=40, seed=7)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=threads).run(phases)
        assert_serializable(serial, par)

    def test_more_threads_than_work(self):
        prog, phases = fanin_workload(fan=2, phases=10, seed=0)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=16).run(phases)
        assert_serializable(serial, par)

    def test_engine_reuse_across_many_runs(self):
        prog, phases = fig1_workload(phases=15, seed=0)
        engine = ParallelEngine(prog, num_threads=3)
        reference = engine.run(phases)
        for _ in range(5):
            again = engine.run(phases)
            assert again.records == reference.records
            assert again.executions_as_set() == reference.executions_as_set()

    def test_checker_under_contention(self):
        """The invariant checker makes the critical section long, widening
        race windows; everything must still hold."""
        prog, phases = build_crisis_workload(phases=60, regions=2)
        serial = SerialExecutor(prog).run(phases)
        checker = InvariantChecker()
        par = ParallelEngine(prog, num_threads=4, checker=checker).run(phases)
        assert_serializable(serial, par)
        assert checker.checks_run > 100
        assert checker.violations == []

    def test_tight_flow_control_under_threads(self):
        prog, phases = pipeline_workload(depth=8, phases=60, seed=2)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(
            prog,
            num_threads=6,
            env=EnvironmentConfig(max_in_flight_phases=2),
        ).run(phases)
        assert_serializable(serial, par)
