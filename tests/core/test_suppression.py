"""Change-suppression (Δ-elision) unit and end-to-end tests.

Covers the three layers of the tentpole:

* :func:`repro.core.ports.stable_equal` — the conservative latch test;
* the elidability recurrence (``PairRuntime._compute_elide_ok``) over the
  two-flag vertex contract (``suppressible`` / ``silent_on_unchanged``);
* end-to-end elision on the real engines: fewer executions, *identical*
  records vs the unsuppressed serial oracle, and honest
  ``stats["suppression"]`` accounting — including the opt-out vertices
  whose arrival counts must never change.
"""

import math

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.plan import compile_plan
from repro.core.ports import stable_equal
from repro.core.program import PairRuntime, Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import FunctionVertex
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph
from repro.models.basic import ArrivalCounter, ChangeRecorder, Recorder
from repro.models.sensors import ReplaySource
from repro.runtime.engine import ParallelEngine
from repro.simulator import SimulatedEngine


# ---------------------------------------------------------------------------
# stable_equal: the latch test
# ---------------------------------------------------------------------------


class TestStableEqual:
    def test_scalars(self):
        assert stable_equal(3, 3)
        assert stable_equal(3.5, 3.5)
        assert stable_equal("x", "x")
        assert stable_equal(b"x", b"x")
        assert stable_equal(True, True)
        assert not stable_equal(3, 4)
        assert not stable_equal("x", "y")

    def test_none(self):
        assert stable_equal(None, None)
        assert not stable_equal(None, 0)
        assert not stable_equal(0, None)

    def test_type_identity_required(self):
        # 1 == 1.0 and True == 1 in Python, but downstream code may
        # branch on type — these must NOT suppress.
        assert not stable_equal(1, 1.0)
        assert not stable_equal(True, 1)
        assert not stable_equal(0, False)
        assert not stable_equal("1", 1)

    def test_nan_never_equal(self):
        nan = float("nan")
        assert not stable_equal(nan, nan)
        assert not stable_equal((1.0, nan), (1.0, nan))

    def test_tuples_recursive(self):
        assert stable_equal((1, "a", (2.5, None)), (1, "a", (2.5, None)))
        assert not stable_equal((1, 2), (1, 2, 3))
        assert not stable_equal((1, 2), (1, 3))
        assert not stable_equal((1, 2), [1, 2])

    def test_dicts_recursive(self):
        assert stable_equal({"a": 1, "b": (2,)}, {"a": 1, "b": (2,)})
        assert not stable_equal({"a": 1}, {"a": 1, "b": 2})
        assert not stable_equal({"a": 1}, {"a": 2})

    def test_frozenset_scalar_members_only(self):
        assert stable_equal(frozenset({1, 2}), frozenset({1, 2}))
        assert not stable_equal(frozenset({(1,)}), frozenset({(1,)}))

    def test_depth_limit_is_conservative(self):
        deep = (1,)
        for _ in range(10):
            deep = (deep,)
        assert not stable_equal(deep, deep)  # too deep -> never suppress

    def test_unknown_types_never_equal(self):
        class Payload:
            def __eq__(self, other):  # pragma: no cover - must not be called
                return True

        p = Payload()
        assert not stable_equal(p, p)
        assert not stable_equal([1], [1])  # mutable list: not whitelisted
        assert not stable_equal({1}, {1})  # mutable set: not whitelisted


# ---------------------------------------------------------------------------
# The elidability recurrence
# ---------------------------------------------------------------------------


def _fwd(ctx):
    return sum(ctx.inputs[n] for n in sorted(ctx.inputs))


def chain_program(sink, interior=None):
    """src -> a -> b -> sink with a re-emitting source."""
    g = ComputationGraph(name="chain")
    g.add_vertices(["src", "a", "b", "sink"])
    g.add_edge("src", "a")
    g.add_edge("a", "b")
    g.add_edge("b", "sink")
    mk = interior or (lambda: FunctionVertex(_fwd, suppressible=True))
    return Program(
        g,
        {
            "src": ReplaySource(values=[5.0] * 40),
            "a": mk(),
            "b": mk(),
            "sink": sink,
        },
        name="chain",
    )


def elide_map(program, suppress=True):
    rt = PairRuntime(program, [], suppress=suppress)
    idx = program.numbering.index_of
    return {name: rt._elide_ok[idx[name]] for name in idx}, rt


class TestElideRecurrence:
    def test_silent_sink_closes_the_chain(self):
        ok, rt = elide_map(chain_program(ChangeRecorder()))
        # src's entry is vacuous (sources have no in-edges) but the
        # recurrence marks it elidable like any suppressible vertex whose
        # successors all are.
        assert ok == {"src": True, "a": True, "b": True, "sink": True}
        assert rt.ineligible_vertices == 0

    def test_recording_sink_blocks_the_whole_chain(self):
        # Recorder records *every* changed arrival, so eliding any
        # upstream execution would lose records: nothing is elidable.
        ok, _ = elide_map(chain_program(Recorder()))
        assert ok == {"src": False, "a": False, "b": False, "sink": False}

    def test_silent_interior_terminates_the_closure(self):
        # A silent_on_unchanged interior vertex absorbs the re-emission,
        # so IT is elidable even above a non-elidable sink; the vertex
        # directly above the sink is not.
        def silent():
            return FunctionVertex(_fwd, suppressible=True, silent_on_unchanged=True)

        ok, _ = elide_map(chain_program(Recorder(), interior=silent))
        assert ok["a"] and ok["b"]
        assert not ok["sink"]

    def test_opt_out_vertex_is_never_elidable(self):
        ok, _ = elide_map(chain_program(ArrivalCounter()))
        assert not ok["sink"]
        # ...and its predecessor only survives if silent; _fwd is not.
        assert not ok["b"]

    def test_suppress_off_disables_everything(self):
        ok, rt = elide_map(chain_program(ChangeRecorder()), suppress=False)
        assert not any(ok.values())
        assert rt.ineligible_vertices == 0
        assert rt.elidable_successor_names() == {}

    def test_elidable_successor_names_matches_map(self):
        _, rt = elide_map(chain_program(ChangeRecorder()))
        assert rt.elidable_successor_names() == {
            "src": frozenset({"a"}),
            "a": frozenset({"b"}),
            "b": frozenset({"sink"}),
        }


# ---------------------------------------------------------------------------
# End-to-end elision
# ---------------------------------------------------------------------------


def phases(n=40):
    return [PhaseInput(k, float(k)) for k in range(1, n + 1)]


class TestEndToEndElision:
    def oracle(self):
        return SerialExecutor(chain_program(ChangeRecorder())).run(phases())

    def test_parallel_cone_elides_and_matches_oracle(self):
        serial = self.oracle()
        result = ParallelEngine(
            chain_program(ChangeRecorder()), num_threads=2, frontier="cone"
        ).run(phases())
        section = result.stats["suppression"]
        assert section["enabled"]
        assert section["suppressed_messages"] > 0
        assert section["elided_executions"] > 0
        assert result.execution_count < serial.execution_count
        assert result.message_count < serial.message_count
        assert check_serializable(serial, result, allow_elision=True)
        assert result.records == serial.records

    def test_parallel_global_defaults_off(self):
        serial = self.oracle()
        result = ParallelEngine(
            chain_program(ChangeRecorder()), num_threads=2, frontier="global"
        ).run(phases())
        section = result.stats["suppression"]
        assert not section["enabled"]
        assert section["suppressed_messages"] == 0
        assert result.execution_count == serial.execution_count
        assert check_serializable(serial, result)

    def test_explicit_opt_in_under_global(self):
        serial = self.oracle()
        result = ParallelEngine(
            chain_program(ChangeRecorder()),
            num_threads=2,
            frontier="global",
            suppress=True,
        ).run(phases())
        assert result.stats["suppression"]["enabled"]
        assert result.execution_count < serial.execution_count
        assert check_serializable(serial, result, allow_elision=True)
        assert result.records == serial.records

    def test_explicit_opt_out_under_cone(self):
        serial = self.oracle()
        result = ParallelEngine(
            chain_program(ChangeRecorder()),
            num_threads=2,
            frontier="cone",
            suppress=False,
        ).run(phases())
        assert not result.stats["suppression"]["enabled"]
        assert result.execution_count == serial.execution_count

    def test_fused_plan_elides_too(self):
        serial = self.oracle()
        plan = compile_plan(chain_program(ChangeRecorder()), fuse=True)
        result = ParallelEngine(plan, num_threads=2, frontier="cone").run(
            phases()
        )
        assert result.stats["suppression"]["enabled"]
        assert check_serializable(serial, result, allow_elision=True)
        assert result.records == serial.records

    def test_serial_executor_suppress_knob(self):
        serial = self.oracle()
        suppressed = SerialExecutor(
            chain_program(ChangeRecorder()), suppress=True
        ).run(phases())
        assert suppressed.execution_count < serial.execution_count
        assert suppressed.records == serial.records

    def test_simulated_engine_suppress_knob(self):
        serial = self.oracle()
        result = SimulatedEngine(
            chain_program(ChangeRecorder()),
            num_workers=2,
            num_processors=2,
            suppress=True,
        ).run(phases())
        assert result.stats["suppression"]["enabled"]
        assert result.execution_count < serial.execution_count
        assert check_serializable(serial, result, allow_elision=True)
        assert result.records == serial.records


class TestOptOutSemantics:
    """An arrival-dependent vertex must see every arrival, suppressed run
    or not — the contract's whole point."""

    def test_arrival_counter_sees_every_arrival(self):
        serial = SerialExecutor(chain_program(ArrivalCounter())).run(phases())
        result = ParallelEngine(
            chain_program(ArrivalCounter()), num_threads=2, frontier="cone"
        ).run(phases())
        assert result.stats["suppression"]["enabled"]
        # The chain above the counter is not elidable (nothing silent
        # terminates the closure), so counts — emitted as records by the
        # sink — are identical.
        assert result.records == serial.records
        assert result.execution_count == serial.execution_count

    def test_counter_behind_silent_vertex_still_counts_its_arrivals(self):
        # src -> quiet -> counter with an *honestly* silent vertex (Sum
        # emits only when its value moves): eliding quiet is safe exactly
        # because the oracle's quiet also emitted nothing on value-equal
        # input.  The counter's arrival count must match the oracle's.
        from repro.models.arithmetic import Sum

        def build():
            g = ComputationGraph(name="opt-out")
            g.add_vertices(["src", "quiet", "counter"])
            g.add_edge("src", "quiet")
            g.add_edge("quiet", "counter")
            return Program(
                g,
                {
                    "src": ReplaySource(values=[7.0] * 30),
                    "quiet": Sum(),
                    "counter": ArrivalCounter(),
                },
                name="opt-out",
            )

        serial = SerialExecutor(build()).run(phases(30))
        result = ParallelEngine(build(), num_threads=2, frontier="cone").run(
            phases(30)
        )
        assert check_serializable(serial, result, allow_elision=True)
        assert result.records == serial.records


class TestSuppressionStatsAccounting:
    def test_stats_validate_against_schema(self):
        from repro.analysis.stats import validate_engine_stats

        result = ParallelEngine(
            chain_program(ChangeRecorder()), num_threads=2, frontier="cone"
        ).run(phases())
        assert validate_engine_stats("parallel[k=2]", result.stats) == []

    def test_direct_elisions_bounded_by_suppressed_messages(self):
        result = ParallelEngine(
            chain_program(ChangeRecorder()), num_threads=2, frontier="cone"
        ).run(phases())
        section = result.stats["suppression"]
        assert section["elided_executions"] <= section["suppressed_messages"]

    def test_first_message_is_never_suppressed(self):
        # Even a constant-valued chain delivers its first value end to
        # end: the sink records exactly one entry.
        result = ParallelEngine(
            chain_program(ChangeRecorder()), num_threads=2, frontier="cone"
        ).run(phases())
        assert sum(len(v) for v in result.records.values()) == 1
