"""Execution plans (:mod:`repro.core.plan`): fusion semantics, state
management, translation back to original-vertex reporting."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.plan import (
    ExecutionPlan,
    FusedTrace,
    FusedVertex,
    as_plan,
    compile_plan,
)
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import EMIT_NOTHING, FunctionVertex, Vertex
from repro.errors import VertexExecutionError
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph

from ..conftest import ScriptedSource, make_chain_program, signals


class PlainSource(Vertex):
    """Script-driven source with equality-comparable state (no RNG)."""

    def __init__(self, script) -> None:
        self.script = dict(script)

    def on_execute(self, ctx):
        if ctx.phase in self.script:
            return self.script[ctx.phase]
        return EMIT_NOTHING


class CountingForward(Vertex):
    """Forwards its single changed input; counts how often it ran."""

    def __init__(self) -> None:
        self.executed = 0

    def reset(self) -> None:
        self.executed = 0

    def on_execute(self, ctx):
        self.executed += 1
        vals = ctx.changed_values()
        if not vals:
            return EMIT_NOTHING
        (value,) = vals.values()
        return value


def counting_chain(depth, script):
    g = ComputationGraph(name=f"chain{depth}")
    names = [f"n{i}" for i in range(depth)]
    g.add_vertices(names)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b)
    behaviors = {names[0]: PlainSource(script)}
    for n in names[1:]:
        behaviors[n] = CountingForward()
    return Program(g, behaviors), names


class TestCompilePlan:
    def test_identity_when_fuse_off(self):
        prog = make_chain_program(4, {1: "a"})
        plan = compile_plan(prog, fuse=False)
        assert plan.program is prog
        assert not plan.fused
        assert plan.vertices_eliminated == 0

    def test_identity_when_no_chains(self):
        g = ComputationGraph.from_edges(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        prog = Program(
            g,
            {
                "a": ScriptedSource({1: 1}),
                "b": FunctionVertex(lambda ctx: 1),
                "c": FunctionVertex(lambda ctx: 1),
                "d": FunctionVertex(lambda ctx: 1),
            },
        )
        plan = compile_plan(prog)
        assert plan.program is prog
        assert not plan.fused

    def test_as_plan_wraps_and_passes_through(self):
        prog = make_chain_program(3, {1: "x"})
        plan = as_plan(prog)
        assert isinstance(plan, ExecutionPlan)
        assert plan.program is prog
        assert as_plan(plan) is plan

    def test_chain_collapses_and_shares_behaviors(self):
        prog, names = counting_chain(4, {1: 10})
        plan = compile_plan(prog)
        assert plan.fused
        assert plan.program.n == 1
        stage = plan.stage_of[names[0]]
        assert plan.members(stage) == tuple(names)
        fv = plan.program.behaviors[stage]
        assert isinstance(fv, FusedVertex)
        # Member behaviours are the source program's own objects.
        for member in names[1:]:
            assert any(
                m.behavior is prog.behaviors[member] for m in fv._members
            )


class TestFusedSemantics:
    def run_both(self, prog, phases):
        oracle = SerialExecutor(prog).run(phases)
        fused = SerialExecutor(compile_plan(prog)).run(phases)
        return oracle, fused

    def test_serial_equality_on_chain(self):
        prog = make_chain_program(5, {1: "a", 3: "b", 4: "c"})
        oracle, fused = self.run_both(prog, signals(5))
        report = check_serializable(oracle, fused)
        assert report.equivalent, report
        assert oracle.message_count == fused.message_count
        assert sorted(oracle.executions) == sorted(fused.executions)

    def test_serial_equality_on_join_graph(self):
        # Two fused source chains joining at a correlator with a fused tail.
        g = ComputationGraph.from_edges(
            [
                ("s1", "a1"),
                ("s2", "a2"),
                ("a1", "corr"),
                ("a2", "corr"),
                ("corr", "alarm"),
            ]
        )

        def summing(ctx):
            if not ctx.changed:
                return EMIT_NOTHING
            return sum(v for v in ctx.inputs.values() if v is not None)

        prog = Program(
            g,
            {
                "s1": ScriptedSource({1: 1, 2: 2}),
                "s2": ScriptedSource({2: 10}),
                "a1": FunctionVertex(summing),
                "a2": FunctionVertex(summing),
                "corr": FunctionVertex(summing),
                "alarm": FunctionVertex(summing),
            },
        )
        oracle, fused = self.run_both(prog, signals(3))
        assert check_serializable(oracle, fused).equivalent
        assert compile_plan(prog).program.n == 3  # 6 vertices -> 3 stages

    def test_delta_short_circuit_skips_downstream_members(self):
        prog, names = counting_chain(4, {1: 10})  # source emits only phase 1
        plan = compile_plan(prog)
        SerialExecutor(plan).run(signals(4))
        # Interior members ran once (phase 1); the head stage pair still
        # executed every phase, but silence short-circuited the chain.
        for member in names[1:]:
            assert prog.behaviors[member].executed == 1

    def test_trace_records_executed_prefix(self):
        prog, names = counting_chain(3, {1: 5})
        plan = compile_plan(prog)
        stage = plan.stage_of[names[0]]
        fv = plan.program.behaviors[stage]
        result = SerialExecutor(plan.program).run(signals(2))  # untranslated
        log = dict(result.records[stage])
        assert log[1].members == tuple(names)
        assert log[1].internal_messages == 2
        assert log[2].members == (names[0],)  # silent -> head only
        assert log[2].internal_messages == 0

    def test_translate_restores_per_vertex_reporting(self):
        prog = make_chain_program(3, {1: "v", 2: "w"})
        plan = compile_plan(prog)
        fused = SerialExecutor(plan).run(signals(2))
        assert set(fused.records) == set(
            SerialExecutor(prog).run(signals(2)).records
        )
        assert "fusion" in fused.stats
        fstats = fused.stats["fusion"]
        assert fstats["scheduled_pairs"] == 2  # one stage x two phases
        assert fstats["member_executions"] == len(fused.executions)
        assert "+fused[3->1]" in fused.engine

    def test_localize_phase_inputs_rekeys_source_payloads(self):
        prog, names = counting_chain(3, {1: 0})
        plan = compile_plan(prog)
        stage = plan.stage_of[names[0]]
        pis = [PhaseInput(1, 0.0, {names[0]: 42, "other": 7})]
        (out,) = plan.localize_phase_inputs(pis)
        assert out.values == {stage: 42, "other": 7}
        # Identity plan: inputs pass through untouched.
        ident = compile_plan(prog, fuse=False)
        assert ident.localize_phase_inputs(pis) is pis

    def test_name_keyed_consumer_downstream_of_fused_chain(self):
        # A sink that reads inputs BY ORIGINAL NAME (ctx.input("b0v1"))
        # while its plan-space predecessors are fused stages: the plan
        # must relabel, or the sink silently reads defaults.
        g = ComputationGraph.from_edges(
            [
                ("a0", "a1"),
                ("b0", "b1"),
                ("a1", "sink"),
                ("b1", "sink"),
            ]
        )

        class NameKeyedSink(Vertex):
            def on_execute(self, ctx):
                if not ctx.changed:
                    return EMIT_NOTHING
                return (ctx.input("a1", 0), ctx.input("b1", 0))

        def fwd(ctx):
            vals = ctx.changed_values()
            if not vals:
                return EMIT_NOTHING
            (value,) = vals.values()
            return value

        def build():
            return Program(
                g.copy(),
                {
                    "a0": PlainSource({1: 3, 2: 4}),
                    "b0": PlainSource({1: 30}),
                    "a1": FunctionVertex(fwd),
                    "b1": FunctionVertex(fwd),
                    "sink": NameKeyedSink(),
                },
            )

        oracle = SerialExecutor(build()).run(signals(3))
        plan = compile_plan(build())
        assert plan.fused and plan.program.n == 3
        fused = SerialExecutor(plan).run(signals(3))
        assert check_serializable(oracle, fused).equivalent
        assert dict(oracle.records)["sink"] == dict(fused.records)["sink"]
        assert dict(fused.records)["sink"][0] == (1, (3, 30))

    def test_mid_chain_fault_attributed_to_member(self):
        prog, names = counting_chain(4, {1: 1})
        bad = names[2]

        class Exploding(Vertex):
            def on_execute(self, ctx):
                raise RuntimeError("boom")

        prog.behaviors[bad] = Exploding()
        plan = compile_plan(prog)
        with pytest.raises(VertexExecutionError) as err:
            SerialExecutor(plan).run(signals(1))
        assert err.value.vertex == bad
        assert err.value.phase == 1


class TestFusedVertexState:
    def make(self):
        prog, names = counting_chain(3, {1: 1, 2: 2})
        plan = compile_plan(prog)
        stage = plan.stage_of[names[0]]
        return prog, plan, stage, plan.program.behaviors[stage]

    def test_snapshot_restore_roundtrip(self):
        prog, plan, stage, fv = self.make()
        SerialExecutor(plan).run(signals(2))
        snap = fv.snapshot_state()
        counts = {n: b.executed for n, b in prog.behaviors.items()
                  if isinstance(b, CountingForward)}
        SerialExecutor(plan).run(signals(2))  # run again (resets, mutates)
        fv.restore_state(snap)
        # Restoration lands in the source program's own behaviour objects.
        for n, c in counts.items():
            assert prog.behaviors[n].executed == c
        assert fv.snapshot_state() == snap

    def test_delta_roundtrip(self):
        prog, plan, stage, fv = self.make()
        fv.reset()
        baseline = fv.snapshot_state()
        SerialExecutor(plan).run(signals(2))
        delta = fv.snapshot_delta(baseline)
        assert delta[0] == "fused"
        after = fv.snapshot_state()
        fv.restore_state(baseline)
        fv.apply_delta(pickle.loads(pickle.dumps(delta)))
        assert fv.snapshot_state() == after

    def test_fused_vertex_pickles(self):
        prog, names = counting_chain(3, {1: 1})
        plan = compile_plan(prog)
        stage = plan.stage_of[names[0]]
        clone = pickle.loads(pickle.dumps(plan.program.behaviors[stage]))
        assert clone.member_names == tuple(names)

    def test_reset_clears_latch_and_members(self):
        prog, plan, stage, fv = self.make()
        SerialExecutor(plan).run(signals(2))
        fv._latch["n1"] = 99
        fv.reset()
        assert fv._latch == {}
        for n in ("n1", "n2"):
            assert prog.behaviors[n].executed == 0

    def test_trace_is_picklable(self):
        t = FusedTrace(("a", "b"), (("b", (1, 2)),), 1)
        assert pickle.loads(pickle.dumps(t)) == t
