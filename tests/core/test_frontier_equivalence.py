"""Differential engine-matrix campaign for the frontier modes.

Property-style: a corpus of 200+ seeded random DAG workloads (reusing the
fuzz harness's generators) is run through the engine matrix — virtual
(schedule-exploring), threaded, process and DES-simulated — under both
readiness rules (``frontier="cone"`` and ``frontier="global"``), fused and
unfused, and every run must be result-equal (and, where the workload is
stateful, final-state-equal) to the **unfused serial oracle**.

The virtual-engine campaigns also run the mode-aware
:class:`~repro.testing.monitor.RaceMonitor`, so every scheduler mutation
is invariant-checked, not just the end result.
"""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.plan import compile_plan
from repro.core.serial import SerialExecutor
from repro.runtime.engine import ParallelEngine
from repro.simulator import SimulatedEngine
from repro.testing.fuzz import (
    run_one,
    run_one_process,
    process_config_for_run,
    spec_for_run,
)
from repro.testing.schedule import make_policy

CORPUS_SEED = 2025
CORPUS_SIZE = 200
POLICIES = ("random", "round-robin", "priority", "random")

FRONTIERS = ("cone", "global")
FUSE = (False, True)


def corpus(size=CORPUS_SIZE, skew=False):
    return [
        spec_for_run(CORPUS_SEED, i, skew=skew) for i in range(size)
    ]


def policy_for(i):
    return make_policy(POLICIES[i % len(POLICIES)], 1000 + i)


# ---------------------------------------------------------------------------
# Virtual engine (schedule exploration + invariant monitor)
# ---------------------------------------------------------------------------


class TestVirtualEngineMatrix:
    @pytest.mark.parametrize("frontier", FRONTIERS)
    @pytest.mark.parametrize("fuse", FUSE)
    def test_campaign_matches_serial_oracle(self, frontier, fuse):
        for i, spec in enumerate(corpus()):
            outcome = run_one(
                spec, policy_for(i), fuse=fuse, frontier=frontier
            )
            assert outcome.passed, (
                f"spec {i} [{spec.describe()}] frontier={frontier} "
                f"fuse={fuse}: {outcome.reason}"
            )

    def test_skewed_campaign_cone(self):
        # A straggler per phase must not break serializability when cones
        # pipeline past it.
        for i, spec in enumerate(corpus(size=80, skew=True)):
            outcome = run_one(spec, policy_for(i), frontier="cone")
            assert outcome.passed, (
                f"skewed spec {i} [{spec.describe()}]: {outcome.reason}"
            )

    def test_batched_commit_path_cone(self):
        for i, spec in enumerate(corpus(size=60)):
            outcome = run_one(
                spec, policy_for(i), batch_size=4, frontier="cone"
            )
            assert outcome.passed, (
                f"spec {i} batched cone: {outcome.reason}"
            )


# ---------------------------------------------------------------------------
# Threaded engine (real threads, stateful workloads, final-state check)
# ---------------------------------------------------------------------------


def run_threaded(spec, frontier, fuse):
    """Serial oracle vs real-thread run on the same stateful program;
    returns (serializability_report, state_diffs)."""
    program, phases = spec.build_picklable()  # stateful SparseSource
    serial = SerialExecutor(program).run(phases)
    serial_state = {
        name: beh.snapshot_state() for name, beh in program.behaviors.items()
    }
    engine = ParallelEngine(
        compile_plan(program, fuse=fuse),
        num_threads=spec.threads,
        frontier=frontier,
    )
    result = engine.run(phases)
    report = check_serializable(serial, result)
    diffs = {
        name: (expected, program.behaviors[name].snapshot_state())
        for name, expected in serial_state.items()
        if program.behaviors[name].snapshot_state() != expected
    }
    return report, diffs, result


class TestThreadedEngineMatrix:
    @pytest.mark.parametrize("frontier", FRONTIERS)
    @pytest.mark.parametrize("fuse", FUSE)
    def test_threaded_matches_serial_oracle(self, frontier, fuse):
        for i in range(16):
            spec = spec_for_run(CORPUS_SEED, i)
            report, diffs, result = run_threaded(spec, frontier, fuse)
            assert report, (
                f"spec {i} frontier={frontier} fuse={fuse}: {report}"
            )
            assert not diffs, (
                f"spec {i} frontier={frontier} fuse={fuse}: "
                f"final state diverged: {diffs}"
            )
            assert result.stats["frontier"]["mode"] == frontier

    def test_threaded_skewed_cone(self):
        for i in range(8):
            spec = spec_for_run(CORPUS_SEED, i, skew=True)
            report, diffs, _ = run_threaded(spec, "cone", fuse=False)
            assert report and not diffs, f"skewed spec {i}: {report} {diffs}"


# ---------------------------------------------------------------------------
# Process engine (fork start method keeps the matrix affordable)
# ---------------------------------------------------------------------------


class TestProcessEngineMatrix:
    @pytest.mark.parametrize("frontier", FRONTIERS)
    def test_process_matches_serial_oracle(self, frontier):
        for i in range(4):
            spec = spec_for_run(CORPUS_SEED, i, max_vertices=6, max_phases=4)
            config = process_config_for_run(CORPUS_SEED, i)
            outcome = run_one_process(
                spec, config, start_method="fork", frontier=frontier
            )
            assert outcome.passed, (
                f"spec {i} frontier={frontier}: {outcome.reason}"
            )


# ---------------------------------------------------------------------------
# Simulated (DES) engine
# ---------------------------------------------------------------------------


class TestSimulatedEngineMatrix:
    @pytest.mark.parametrize("frontier", FRONTIERS)
    def test_simulated_matches_serial_oracle(self, frontier):
        for i in range(8):
            spec = spec_for_run(CORPUS_SEED, i)
            program, phases = spec.build()
            serial = SerialExecutor(program).run(phases)
            result = SimulatedEngine(
                program, num_workers=2, num_processors=2, frontier=frontier
            ).run(phases)
            report = check_serializable(serial, result)
            assert report, f"spec {i} frontier={frontier}: {report}"
            assert result.stats["frontier"]["mode"] == frontier


# ---------------------------------------------------------------------------
# Change suppression (Δ-elision): suppressed runs vs the unsuppressed oracle
# ---------------------------------------------------------------------------


def suppress_corpus(size=CORPUS_SIZE):
    """The same seeded corpus, rebuilt with the suppression-friendly
    vertex mix (suppressible interiors, ChangeRecorder sinks) so elision
    is actually reachable."""
    return [
        spec_for_run(CORPUS_SEED, i, suppress=True) for i in range(size)
    ]


class TestSuppressionMatrix:
    """Every engine, both frontier modes, fused and unfused, with change
    suppression ON — always judged against the **unsuppressed** serial
    oracle via the elision-aware check (records must match exactly; the
    suppressed run may only execute/message *less*)."""

    @pytest.mark.parametrize("frontier", FRONTIERS)
    @pytest.mark.parametrize("fuse", FUSE)
    def test_virtual_campaign(self, frontier, fuse):
        for i, spec in enumerate(suppress_corpus()):
            outcome = run_one(
                spec, policy_for(i), fuse=fuse, frontier=frontier,
                suppress=True,
            )
            assert outcome.passed, (
                f"spec {i} [{spec.describe()}] frontier={frontier} "
                f"fuse={fuse} suppress: {outcome.reason}"
            )

    def test_corpus_actually_elides(self):
        # The campaign above is vacuous if the corpus never suppresses;
        # assert a meaningful fraction of runs dropped at least one
        # message.
        suppressing = 0
        for i, spec in enumerate(suppress_corpus(size=60)):
            outcome = run_one(
                spec, policy_for(i), frontier="cone", suppress=True
            )
            assert outcome.passed
            section = outcome.parallel.stats["suppression"]
            assert section["enabled"]
            if section["suppressed_messages"] > 0:
                suppressing += 1
        assert suppressing >= 10, (
            f"only {suppressing}/60 corpus runs suppressed anything"
        )

    @pytest.mark.parametrize("frontier", FRONTIERS)
    @pytest.mark.parametrize("fuse", FUSE)
    def test_threaded_campaign(self, frontier, fuse):
        for i in range(12):
            spec = spec_for_run(CORPUS_SEED, i, suppress=True)
            program, phases = spec.build_picklable()
            serial = SerialExecutor(program).run(phases)
            result = ParallelEngine(
                compile_plan(program, fuse=fuse),
                num_threads=spec.threads,
                frontier=frontier,
                suppress=True,
            ).run(phases)
            report = check_serializable(serial, result, allow_elision=True)
            assert report, (
                f"spec {i} frontier={frontier} fuse={fuse}: {report}"
            )
            assert result.records == serial.records, f"spec {i} records"
            assert result.stats["suppression"]["enabled"]

    @pytest.mark.parametrize("frontier", FRONTIERS)
    def test_process_campaign(self, frontier):
        for i in range(4):
            spec = spec_for_run(
                CORPUS_SEED, i, max_vertices=6, max_phases=4, suppress=True
            )
            config = process_config_for_run(CORPUS_SEED, i)
            outcome = run_one_process(
                spec, config, start_method="fork", frontier=frontier,
                suppress=True,
            )
            assert outcome.passed, (
                f"spec {i} frontier={frontier} suppress: {outcome.reason}"
            )

    @pytest.mark.parametrize("frontier", FRONTIERS)
    def test_simulated_campaign(self, frontier):
        for i in range(8):
            spec = spec_for_run(CORPUS_SEED, i, suppress=True)
            program, phases = spec.build()
            serial = SerialExecutor(program).run(phases)
            result = SimulatedEngine(
                program, num_workers=2, num_processors=2, frontier=frontier,
                suppress=True,
            ).run(phases)
            report = check_serializable(serial, result, allow_elision=True)
            assert report, f"spec {i} frontier={frontier}: {report}"
            assert result.records == serial.records, f"spec {i} records"


# ---------------------------------------------------------------------------
# Mode regression: global must reproduce the pre-cone schedule
# ---------------------------------------------------------------------------


class TestGlobalModeRegression:
    def test_global_trace_is_deterministic_and_mode_independent_of_cone_code(self):
        """Two global-mode virtual runs of the same (spec, policy) produce
        identical step traces — and those traces never contain cone-only
        bookkeeping preemption points."""
        for i in range(20):
            spec = spec_for_run(CORPUS_SEED, i)
            a = run_one(spec, policy_for(i), frontier="global")
            b = run_one(spec, policy_for(i), frontier="global")
            assert a.passed and b.passed
            assert a.trace_hash == b.trace_hash, f"spec {i} nondeterministic"

    def test_global_completion_log_is_in_phase_order(self):
        # The completed-phase log drives tracer labelling; in global mode
        # the complete-prefix property forces completions to be reported
        # as 1, 2, 3, ...
        from repro.core.tracer import ExecutionTracer

        for i in range(10):
            spec = spec_for_run(CORPUS_SEED, i)
            program, phases = spec.build()
            tracer = ExecutionTracer()
            ParallelEngine(
                program,
                num_threads=spec.threads,
                frontier="global",
                tracer=tracer,
            ).run(phases)
            log = [
                e.pair[1]
                for e in tracer.events
                if e.kind == "phase_completed"
            ]
            assert log == list(range(1, len(log) + 1))
