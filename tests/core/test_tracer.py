"""Tests for the execution tracer and its concurrency profiles."""

import pytest

from repro.core.invariants import InvariantChecker
from repro.core.state import SchedulerState
from repro.core.tracer import (
    ExecutionTracer,
    SetSnapshot,
    concurrent_phase_profile,
    max_concurrent_pairs,
    max_concurrent_phases,
)
from repro.graph.generators import fig3_graph
from repro.graph.numbering import number_graph


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestEventRecording:
    def test_events_in_order(self):
        clock = FakeClock()
        tr = ExecutionTracer(clock=clock)
        tr.phase_started(1)
        clock.t = 1.0
        tr.enqueued((1, 1))
        clock.t = 2.0
        tr.execute_begin((1, 1), worker=0)
        clock.t = 3.0
        tr.execute_end((1, 1), worker=0)
        kinds = [e.kind for e in tr.events]
        assert kinds == ["phase_started", "enqueued", "execute_begin", "execute_end"]
        assert tr.executed_pairs() == [(1, 1)]

    def test_set_clock_rebinds(self):
        tr = ExecutionTracer()
        clock = FakeClock()
        clock.t = 42.0
        tr.set_clock(clock)
        tr.phase_started(1)
        assert tr.events[0].time == 42.0

    def test_intervals_matching(self):
        clock = FakeClock()
        tr = ExecutionTracer(clock=clock)
        tr.execute_begin((1, 1))
        clock.t = 2.0
        tr.execute_begin((2, 1))
        clock.t = 3.0
        tr.execute_end((1, 1))
        clock.t = 5.0
        tr.execute_end((2, 1))
        assert tr.intervals() == [(0.0, 3.0, (1, 1)), (2.0, 5.0, (2, 1))]


class TestConcurrencyProfiles:
    def test_max_concurrent_pairs(self):
        intervals = [
            (0.0, 2.0, (1, 1)),
            (1.0, 3.0, (2, 1)),
            (2.5, 4.0, (3, 1)),
        ]
        assert max_concurrent_pairs(intervals) == 2

    def test_touching_intervals_do_not_overlap(self):
        intervals = [(0.0, 1.0, (1, 1)), (1.0, 2.0, (2, 1))]
        assert max_concurrent_pairs(intervals) == 1

    def test_distinct_phase_counting(self):
        # Two pairs of the SAME phase running together count as one phase.
        intervals = [
            (0.0, 2.0, (1, 1)),
            (0.0, 2.0, (2, 1)),
            (1.0, 3.0, (3, 2)),
        ]
        assert max_concurrent_phases(intervals) == 2
        assert max_concurrent_pairs(intervals) == 3

    def test_profile_steps(self):
        intervals = [(0.0, 2.0, (1, 1)), (1.0, 3.0, (2, 2))]
        profile = concurrent_phase_profile(intervals)
        # After t=1 both phases are active; after t=2 only phase 2.
        assert (1.0, 2) in profile
        assert profile[-1] == (3.0, 0)

    def test_empty(self):
        assert max_concurrent_phases([]) == 0
        assert max_concurrent_pairs([]) == 0


class TestSnapshots:
    def test_capture_sets(self):
        nb = number_graph(fig3_graph())
        st = SchedulerState(nb, checker=InvariantChecker())
        tr = ExecutionTracer(clock=FakeClock())
        st.start_phase()
        snap = tr.capture_sets(st, "(a) phase 1 initiated")
        st.complete_execution(1, 1, [3])
        snap_b = tr.capture_sets(st, "(b) (1,1) executed")
        assert snap.label.startswith("(a)")
        assert snap.ready == {(1, 1), (2, 1)}
        assert snap_b.partial == {(3, 1)}
        assert len(tr.snapshots) == 2

    def test_membership_glyph_classes(self):
        snap = SetSnapshot(
            label="x",
            partial=frozenset({(3, 1)}),
            full=frozenset({(2, 1), (4, 1)}),
            ready=frozenset({(2, 1)}),
        )
        assert snap.membership((3, 1)) == "partial"
        assert snap.membership((4, 1)) == "full"
        assert snap.membership((2, 1)) == "ready"
        assert snap.membership((5, 1)) == "none"

    def test_snapshots_are_immutable_copies(self):
        nb = number_graph(fig3_graph())
        st = SchedulerState(nb)
        tr = ExecutionTracer()
        st.start_phase()
        snap = tr.capture_sets(st, "before")
        st.complete_execution(1, 1, [])
        assert (1, 1) in snap.ready  # unchanged by later mutation
