"""Tests for the LazyMinHeap pair-set structure, including a stateful
property test against a plain-set reference model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pairsets import LazyMinHeap


class TestBasics:
    def test_add_and_min(self):
        h = LazyMinHeap()
        assert h.add(5)
        assert h.add(2)
        assert h.min() == 2

    def test_add_duplicate_returns_false(self):
        h = LazyMinHeap()
        assert h.add(1)
        assert not h.add(1)
        assert len(h) == 1

    def test_discard(self):
        h = LazyMinHeap()
        h.add(3)
        assert h.discard(3)
        assert not h.discard(3)
        assert len(h) == 0

    def test_min_empty_raises(self):
        with pytest.raises(IndexError):
            LazyMinHeap().min()

    def test_min_or(self):
        h = LazyMinHeap()
        assert h.min_or(99) == 99
        h.add(4)
        assert h.min_or(99) == 4

    def test_min_skips_stale_entries(self):
        h = LazyMinHeap()
        for v in (1, 2, 3):
            h.add(v)
        h.discard(1)
        h.discard(2)
        assert h.min() == 3

    def test_readd_after_discard(self):
        h = LazyMinHeap()
        h.add(7)
        h.discard(7)
        h.add(7)
        assert h.min() == 7
        assert len(h) == 1

    def test_contains_len_bool(self):
        h = LazyMinHeap()
        assert not h
        h.add(2)
        assert 2 in h
        assert 3 not in h
        assert len(h) == 1
        assert h

    def test_iter_sorted(self):
        h = LazyMinHeap()
        for v in (5, 1, 3):
            h.add(v)
        assert list(h) == [1, 3, 5]

    def test_repr(self):
        h = LazyMinHeap()
        h.add(2)
        assert "2" in repr(h)


class TestPopLeq:
    def test_pop_prefix(self):
        h = LazyMinHeap()
        for v in (1, 4, 2, 9):
            h.add(v)
        assert h.pop_leq(4) == [1, 2, 4]
        assert list(h) == [9]

    def test_pop_nothing(self):
        h = LazyMinHeap()
        h.add(10)
        assert h.pop_leq(5) == []
        assert 10 in h

    def test_pop_everything(self):
        h = LazyMinHeap()
        for v in range(5):
            h.add(v)
        assert h.pop_leq(100) == [0, 1, 2, 3, 4]
        assert not h

    def test_pop_skips_stale(self):
        h = LazyMinHeap()
        for v in (1, 2, 3):
            h.add(v)
        h.discard(2)
        assert h.pop_leq(3) == [1, 3]

    def test_pop_empty(self):
        assert LazyMinHeap().pop_leq(10) == []


@st.composite
def operations(draw):
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("add"), st.integers(0, 30)),
                st.tuples(st.just("discard"), st.integers(0, 30)),
                st.tuples(st.just("pop_leq"), st.integers(0, 30)),
                st.tuples(st.just("min"), st.just(0)),
            ),
            max_size=200,
        )
    )


class TestModelBased:
    @given(operations())
    @settings(max_examples=100, deadline=None)
    def test_against_reference_set(self, ops):
        heap = LazyMinHeap()
        model: set[int] = set()
        for op, arg in ops:
            if op == "add":
                assert heap.add(arg) == (arg not in model)
                model.add(arg)
            elif op == "discard":
                assert heap.discard(arg) == (arg in model)
                model.discard(arg)
            elif op == "pop_leq":
                expected = sorted(v for v in model if v <= arg)
                assert heap.pop_leq(arg) == expected
                model -= set(expected)
            elif op == "min":
                if model:
                    assert heap.min() == min(model)
                else:
                    with pytest.raises(IndexError):
                        heap.min()
            assert len(heap) == len(model)
            assert set(heap) == model
