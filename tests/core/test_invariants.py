"""Tests that the invariant checker actually catches corrupted states."""

import pytest

from repro.core.invariants import InvariantChecker
from repro.core.state import SchedulerState
from repro.errors import InvariantViolation
from repro.graph.generators import fig3_graph
from repro.graph.numbering import number_graph


def healthy_state() -> SchedulerState:
    nb = number_graph(fig3_graph())
    st = SchedulerState(nb)
    st.start_phase()
    st.complete_execution(1, 1, [3])
    return st


class TestHealthyStates:
    def test_clean_state_passes(self):
        checker = InvariantChecker()
        checker.check(healthy_state())
        assert checker.checks_run == 1
        assert checker.violations == []

    def test_initial_state_passes(self):
        nb = number_graph(fig3_graph())
        InvariantChecker().check(SchedulerState(nb))

    def test_repr(self):
        c = InvariantChecker()
        c.check(healthy_state())
        assert "checks=1" in repr(c)


class TestCorruptionDetection:
    def test_pair_missing_from_full(self):
        st = healthy_state()
        st._full.discard((2, 1))
        with pytest.raises(InvariantViolation, match="full set"):
            InvariantChecker().check(st)

    def test_pair_missing_from_partial(self):
        st = healthy_state()
        st._partial.discard((3, 1))
        with pytest.raises(InvariantViolation, match="partial set"):
            InvariantChecker().check(st)

    def test_spurious_full_pair(self):
        st = healthy_state()
        st._full.add((5, 1))
        with pytest.raises(InvariantViolation):
            InvariantChecker().check(st)

    def test_ready_not_min_phase(self):
        st = healthy_state()
        st.start_phase()  # (1,2),(2,2) full; (1,2) ready, (2,2) not
        st._ready.add((2, 2))  # corrupt: (2,1) is the min phase for v2
        with pytest.raises(InvariantViolation, match="ready"):
            InvariantChecker().check(st)

    def test_ready_missing(self):
        st = healthy_state()
        st._ready.discard((2, 1))
        with pytest.raises(InvariantViolation, match="ready"):
            InvariantChecker().check(st)

    def test_corrupted_x_value(self):
        st = healthy_state()
        st._x[1] = 3  # too high: (2,1) and (3,1) still pending
        with pytest.raises(InvariantViolation):
            InvariantChecker().check(st)

    def test_clamp_violation(self):
        st = healthy_state()
        st.start_phase()
        st.complete_execution(1, 2, [])
        st._x[2] = st.x(1) + 1
        with pytest.raises(InvariantViolation):
            InvariantChecker().check(st)

    def test_msg_for_unstarted_phase(self):
        st = healthy_state()
        st._msg.add((1, 5))
        with pytest.raises(InvariantViolation, match="pmax"):
            InvariantChecker().check(st)

    def test_msg_for_bad_vertex(self):
        st = healthy_state()
        st._msg.add((99, 1))
        with pytest.raises(InvariantViolation):
            InvariantChecker().check(st)

    def test_msg_on_finished_pair(self):
        st = healthy_state()
        st._msg.add((1, 1))  # vertex 1 already finished phase 1
        with pytest.raises(InvariantViolation, match="already-finished"):
            InvariantChecker().check(st)

    def test_partial_full_overlap(self):
        st = healthy_state()
        st._partial.add((2, 1))  # also in full
        with pytest.raises(InvariantViolation):
            InvariantChecker().check(st)

    def test_corrupted_x0(self):
        st = healthy_state()
        st._x[0] = 3
        with pytest.raises(InvariantViolation, match="x_0"):
            InvariantChecker().check(st)


class TestNonStrictMode:
    def test_collects_without_raising(self):
        st = healthy_state()
        st._full.discard((2, 1))
        st._x[0] = 3
        checker = InvariantChecker(strict=False)
        checker.check(st)
        assert len(checker.violations) >= 2
