"""Phase retirement: the scheduler-state seam of continuous operation.

Retirement releases per-phase scheduler state for a contiguous complete
prefix.  The correctness argument: a retired phase is complete, complete
means x_p = N (every vertex determined), so every predicate about a
retired phase is answered by the prefix bound alone — no per-phase
storage needed.  These tests pin that contract plus the absolute
completion-log cursor that lets engines trim the log they have already
consumed.
"""

import pytest

from repro.core.invariants import InvariantChecker
from repro.core.state import SchedulerState
from repro.errors import SchedulerError
from repro.graph.generators import chain_graph
from repro.graph.numbering import number_graph


def _chain_state(n=3, frontier="cone", checker=None):
    nb = number_graph(chain_graph(n))
    return SchedulerState(nb, checker=checker, frontier=frontier)


def _run_phase(state, p, n=3):
    for v in range(1, n + 1):
        succs = [v + 1] if v < n else []
        state.complete_execution(v, p, succs)


@pytest.fixture(params=["cone", "global"])
def frontier(request):
    return request.param


class TestRetirePrefix:
    def test_retire_complete_prefix(self, frontier):
        state = _chain_state(frontier=frontier)
        for _ in range(3):
            state.start_phase()
        for p in (1, 2):
            _run_phase(state, p)
        assert state.retire_phases_upto(2) == 2
        assert state.retired_upto == 2
        # Predicates for retired phases answer from the prefix bound.
        assert state.x(1) == 3 and state.x(2) == 3
        assert state.phase_complete(1) and state.phase_complete(2)
        assert not state.phase_complete(3)

    def test_retire_is_idempotent_and_monotonic(self, frontier):
        state = _chain_state(frontier=frontier)
        state.start_phase()
        _run_phase(state, 1)
        assert state.retire_phases_upto(1) == 1
        assert state.retire_phases_upto(1) == 0  # already retired
        with pytest.raises(SchedulerError):
            state.retire_phases_upto(2)  # phase 2 never started

    def test_cannot_retire_incomplete_phase(self, frontier):
        state = _chain_state(frontier=frontier)
        state.start_phase()
        state.start_phase()
        _run_phase(state, 1)
        state.complete_execution(1, 2, [2])  # phase 2 only partially done
        with pytest.raises(SchedulerError):
            state.retire_phases_upto(2)
        assert state.retire_phases_upto(1) == 1

    def test_retirement_releases_per_phase_state(self, frontier):
        state = _chain_state(frontier=frontier)
        for _ in range(4):
            state.start_phase()
        for p in range(1, 5):
            _run_phase(state, p)
        state.retire_phases_upto(4)
        # The per-phase maps hold nothing for retired phases.
        assert not (set(state._x) & {1, 2, 3, 4})
        assert not (state._complete_set & {1, 2, 3, 4})
        for p in range(1, 5):
            assert p not in state._pending
            assert p not in getattr(state, "_partial_by_phase", {})

    def test_scheduling_continues_after_retirement(self, frontier):
        state = _chain_state(frontier=frontier)
        state.start_phase()
        _run_phase(state, 1)
        state.retire_phases_upto(1)
        state.start_phase()
        _run_phase(state, 2)
        assert state.phase_complete(2)
        state.retire_phases_upto(2)
        assert state.retired_upto == 2

    def test_long_prefix_keeps_state_flat(self, frontier):
        state = _chain_state(frontier=frontier)
        sizes = []
        for p in range(1, 201):
            state.start_phase()
            _run_phase(state, p)
            state.retire_phases_upto(p)
            state.trim_completed_log(state.completed_total)
            sizes.append(
                len(state._x)
                + len(state._complete_set)
                + len(state._completed_log)
            )
        assert max(sizes) <= max(sizes[:5]) + 1  # no growth over 200 phases


class TestCompletionLogCursor:
    def test_completed_since_and_trim(self, frontier):
        state = _chain_state(frontier=frontier)
        for _ in range(3):
            state.start_phase()
        for p in (1, 2, 3):
            _run_phase(state, p)
        assert state.completed_since(0) == [1, 2, 3]
        assert state.completed_total == 3
        state.trim_completed_log(2)
        # Absolute cursors survive the trim.
        assert state.completed_since(2) == [3]
        assert state.completed_total == 3

    def test_cursor_below_base_rejected(self, frontier):
        state = _chain_state(frontier=frontier)
        state.start_phase()
        _run_phase(state, 1)
        state.trim_completed_log(1)
        with pytest.raises(SchedulerError):
            state.completed_since(0)
        with pytest.raises(SchedulerError):
            state.trim_completed_log(0)

    def test_trim_beyond_total_rejected(self, frontier):
        state = _chain_state(frontier=frontier)
        state.start_phase()
        _run_phase(state, 1)
        with pytest.raises(SchedulerError):
            state.trim_completed_log(5)


class TestRetirementWithChecker:
    """The invariant checker must accept every retired configuration."""

    def test_checker_accepts_retirement(self, frontier):
        state = _chain_state(frontier=frontier, checker=InvariantChecker())
        for p in range(1, 31):
            state.start_phase()
            _run_phase(state, p)
            if p % 3 == 0:
                state.retire_phases_upto(p)
                state.trim_completed_log(state.completed_total)
        assert state.retired_upto == 30

    def test_checker_with_pipelined_retirement(self, frontier):
        # Retire the prefix while later phases are still in flight.
        state = _chain_state(frontier=frontier, checker=InvariantChecker())
        state.start_phase()
        state.start_phase()
        state.start_phase()
        _run_phase(state, 1)
        state.complete_execution(1, 2, [2])
        state.retire_phases_upto(1)
        state.complete_execution(2, 2, [3])
        state.complete_execution(3, 2, [])
        state.complete_execution(1, 3, [2])
        state.complete_execution(2, 3, [3])
        state.complete_execution(3, 3, [])
        assert state.phase_complete(2) and state.phase_complete(3)
        state.retire_phases_upto(3)
        assert state.retired_upto == 3
