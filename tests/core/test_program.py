"""Tests for Program, PairRuntime and RunResult."""

import pytest

from repro.core.program import PairRuntime, Program, RunResult
from repro.core.vertex import EMIT_NOTHING, FunctionVertex, PassthroughSource
from repro.errors import GraphError, SchedulerError, VertexExecutionError
from repro.events import PhaseInput
from repro.graph.generators import chain_graph, fig3_graph
from repro.graph.model import ComputationGraph
from repro.graph.numbering import number_graph

from tests.conftest import ScriptedSource, forward_vertex, signals


def tiny_program() -> Program:
    g = chain_graph(2)
    return Program(
        g, {"v1": PassthroughSource(), "v2": forward_vertex()}
    )


class TestProgram:
    def test_behavior_coverage_enforced(self):
        g = chain_graph(2)
        with pytest.raises(GraphError, match="missing"):
            Program(g, {"v1": PassthroughSource()})
        with pytest.raises(GraphError, match="extra"):
            Program(
                g,
                {
                    "v1": PassthroughSource(),
                    "v2": forward_vertex(),
                    "ghost": forward_vertex(),
                },
            )

    def test_non_vertex_behavior_rejected(self):
        g = chain_graph(1)
        with pytest.raises(GraphError, match="Vertex"):
            Program(g, {"v1": lambda ctx: None})  # type: ignore[dict-item]

    def test_numbering_for_wrong_graph_rejected(self):
        g1, g2 = chain_graph(2), chain_graph(2)
        nb2 = number_graph(g2)
        with pytest.raises(GraphError, match="different graph"):
            Program(
                g1,
                {"v1": PassthroughSource(), "v2": forward_vertex()},
                numbering=nb2,
            )

    def test_behavior_by_index(self):
        p = tiny_program()
        assert p.behavior(1) is p.behaviors["v1"]
        assert p.behavior(2) is p.behaviors["v2"]

    def test_reset_propagates(self):
        p = tiny_program()
        src = p.behaviors["v1"]
        first = src.rng.random()
        p.reset()
        assert src.rng.random() == first

    def test_source_sink_names(self):
        p = tiny_program()
        assert p.source_names() == ["v1"]
        assert p.sink_names() == ["v2"]

    def test_invalid_graph_rejected(self):
        g = ComputationGraph()
        g.add_vertices(["a", "b"])
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(Exception):
            Program(g, {"a": forward_vertex(), "b": forward_vertex()})


class TestPairRuntime:
    def test_phase_inputs_must_be_sequential(self):
        p = tiny_program()
        with pytest.raises(SchedulerError, match="sequentially"):
            PairRuntime(p, [PhaseInput(2, 0.0)])

    def test_execute_delivers_and_counts(self):
        p = tiny_program()
        rt = PairRuntime(p, [PhaseInput(1, 0.0, {"v1": 10})])
        targets = rt.execute(1, 1)
        assert targets == [2]
        assert rt.message_count == 1
        targets = rt.execute(2, 1)
        assert targets == []  # v2 is a sink; its value is recorded
        assert rt.records["v2"] == [(1, 10)]
        assert rt.execution_count == 2

    def test_source_phase_input_delivery(self):
        p = tiny_program()
        rt = PairRuntime(p, [PhaseInput(1, 0.0, {"v1": 7}), PhaseInput(2, 1.0)])
        ctx = rt.prepare(1, 1)
        assert ctx.phase_input == 7
        ctx2 = rt.prepare(1, 2)
        assert ctx2.phase_input is None  # bare signal

    def test_vertex_exception_wrapped(self):
        g = chain_graph(1)

        def boom(ctx):
            raise ValueError("kaboom")

        p = Program(g, {"v1": FunctionVertex(boom)})

        class _AlwaysRun(PassthroughSource):
            pass

        rt = PairRuntime(p, [PhaseInput(1, 0.0)])
        ctx = rt.prepare(1, 1)
        with pytest.raises(VertexExecutionError, match="kaboom") as ei:
            rt.compute(1, ctx)
        assert ei.value.vertex == "v1"
        assert ei.value.phase == 1
        assert isinstance(ei.value.__cause__, ValueError)

    def test_changed_inputs_across_phases(self):
        g = fig3_graph()
        behaviors = {
            "v1": ScriptedSource({1: "a1"}),
            "v2": ScriptedSource({1: "b1", 2: "b2"}),
            "v3": forward_vertex(),
            "v4": forward_vertex(),
            "v5": forward_vertex(),
            "v6": forward_vertex(),
        }
        # v3's forward_vertex would fail on two simultaneous changes, so
        # use a recording function instead.
        seen = []

        def record_changed(ctx):
            seen.append((ctx.phase, dict(sorted(ctx.changed_values().items()))))
            return EMIT_NOTHING

        behaviors["v3"] = FunctionVertex(record_changed)
        p = Program(g, behaviors)
        rt = PairRuntime(p, signals(2))
        rt.execute(1, 1)
        rt.execute(2, 1)
        rt.execute(3, 1)
        rt.execute(1, 2)
        rt.execute(2, 2)
        rt.execute(3, 2)
        assert seen == [
            (1, {"v1": "a1", "v2": "b1"}),
            (2, {"v2": "b2"}),  # v1 silent in phase 2: latched, not changed
        ]

    def test_build_result(self):
        p = tiny_program()
        rt = PairRuntime(p, [PhaseInput(1, 0.0, {"v1": 1})])
        rt.execute(1, 1)
        rt.execute(2, 1)
        res = rt.build_result("test-engine", [(1, 1), (2, 1)], 0.5, {"k": 1})
        assert res.engine == "test-engine"
        assert res.execution_count == 2
        assert res.phases_run == 1
        assert res.stats == {"k": 1}
        assert res.records_for("v2") == [(1, 1)]
        assert res.records_for("ghost") == []


class TestRunResult:
    def test_executions_as_set(self):
        r = RunResult("e", {}, [(1, 1), (2, 1), (1, 1)], 0, 1)
        assert r.executions_as_set() == {(1, 1), (2, 1)}
        assert r.execution_count == 3

    def test_repr(self):
        r = RunResult("e", {}, [], 0, 0)
        assert "engine='e'" in repr(r)
