"""Tests for the vertex behaviour API and context."""

import pytest

from repro.core.vertex import (
    EMIT_NOTHING,
    FunctionVertex,
    PassthroughSource,
    SourceVertex,
    StatefulFunctionVertex,
    Vertex,
    VertexContext,
)
from repro.errors import VertexExecutionError


def make_ctx(
    *,
    name="v",
    phase=1,
    inputs=None,
    changed=None,
    successors=("a", "b"),
    phase_input=None,
) -> VertexContext:
    return VertexContext(
        name=name,
        phase=phase,
        inputs=inputs or {},
        changed=set(changed or ()),
        successors=list(successors),
        phase_input=phase_input,
    )


class TestVertexContext:
    def test_input_lookup(self):
        ctx = make_ctx(inputs={"x": 5})
        assert ctx.input("x") == 5
        assert ctx.input("y") is None
        assert ctx.input("y", default=0) == 0

    def test_changed_queries(self):
        ctx = make_ctx(inputs={"x": 5, "y": 6}, changed={"x"})
        assert ctx.input_changed("x")
        assert not ctx.input_changed("y")
        assert ctx.changed_values() == {"x": 5}

    def test_emit_broadcasts(self):
        ctx = make_ctx()
        ctx.emit(42)
        assert ctx.outputs == {"a": 42, "b": 42}

    def test_emit_to_targets_one(self):
        ctx = make_ctx()
        ctx.emit_to("a", 1)
        assert ctx.outputs == {"a": 1}

    def test_emit_to_unknown_successor(self):
        ctx = make_ctx()
        with pytest.raises(VertexExecutionError):
            ctx.emit_to("ghost", 1)

    def test_emit_on_sink_records(self):
        ctx = make_ctx(successors=())
        assert ctx.is_sink
        ctx.emit("alert")
        assert ctx.records == ["alert"]
        assert ctx.outputs == {}

    def test_record(self):
        ctx = make_ctx()
        ctx.record("x")
        ctx.record("y")
        assert ctx.records == ["x", "y"]

    def test_finish_return_shorthand(self):
        ctx = make_ctx()
        ctx.finish(7)
        assert ctx.outputs == {"a": 7, "b": 7}

    def test_finish_none_emits_nothing(self):
        ctx = make_ctx()
        ctx.finish(None)
        assert ctx.outputs == {}

    def test_finish_emit_nothing_sentinel(self):
        ctx = make_ctx()
        ctx.finish(EMIT_NOTHING)
        assert ctx.outputs == {}

    def test_finish_respects_explicit_emit(self):
        """A return value is ignored when the vertex already emitted
        explicitly (no double sends)."""
        ctx = make_ctx()
        ctx.emit_to("a", 1)
        ctx.finish(99)
        assert ctx.outputs == {"a": 1}

    def test_false_and_zero_are_emittable(self):
        ctx = make_ctx()
        ctx.finish(0)
        assert ctx.outputs == {"a": 0, "b": 0}
        ctx2 = make_ctx()
        ctx2.finish(False)
        assert ctx2.outputs == {"a": False, "b": False}


class TestVertexClasses:
    def test_base_vertex_abstract(self):
        with pytest.raises(NotImplementedError):
            Vertex().on_execute(make_ctx())

    def test_function_vertex(self):
        fv = FunctionVertex(lambda ctx: ctx.input("x", 0) * 2)
        assert fv.on_execute(make_ctx(inputs={"x": 4})) == 8

    def test_function_vertex_repr(self):
        def my_fn(ctx):
            return None

        assert "my_fn" in repr(FunctionVertex(my_fn))

    def test_stateful_vertex_accumulates(self):
        def acc(state, ctx):
            state["sum"] += ctx.input("x", 0)
            return state["sum"]

        sv = StatefulFunctionVertex(acc, {"sum": 0})
        assert sv.on_execute(make_ctx(inputs={"x": 3})) == 3
        assert sv.on_execute(make_ctx(inputs={"x": 4})) == 7

    def test_stateful_vertex_reset(self):
        sv = StatefulFunctionVertex(lambda s, c: s, {"k": 1})
        sv.state["k"] = 99
        sv.reset()
        assert sv.state == {"k": 1}

    def test_stateful_reset_is_deep_enough(self):
        """reset() must not alias the initial mapping."""
        sv = StatefulFunctionVertex(lambda s, c: None, {"k": 1})
        sv.state["k"] = 2
        sv.reset()
        sv.state["k"] = 3
        sv.reset()
        assert sv.state["k"] == 1

    def test_source_rng_deterministic(self):
        s1 = PassthroughSource(seed=5)
        s2 = PassthroughSource(seed=5)
        assert [s1.rng.random() for _ in range(3)] == [
            s2.rng.random() for _ in range(3)
        ]

    def test_source_reset_reseeds(self):
        s = PassthroughSource(seed=5)
        first = [s.rng.random() for _ in range(3)]
        s.reset()
        assert [s.rng.random() for _ in range(3)] == first

    def test_source_base_abstract(self):
        with pytest.raises(NotImplementedError):
            SourceVertex().on_execute(make_ctx())

    def test_passthrough_source(self):
        ps = PassthroughSource()
        assert ps.on_execute(make_ctx(phase_input=42)) == 42
        assert ps.on_execute(make_ctx(phase_input=None)) is EMIT_NOTHING

    def test_emit_nothing_singleton_and_repr(self):
        assert EMIT_NOTHING is type(EMIT_NOTHING)()
        assert repr(EMIT_NOTHING) == "EMIT_NOTHING"
