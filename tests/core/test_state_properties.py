"""Property-based tests of the scheduler state.

A random driver plays the roles of both the environment and the workers:
at each step it either starts a phase or completes a randomly chosen ready
pair with randomly chosen outputs (respecting edge directions).  With the
invariant checker attached, every reachable state is verified against
definitions (7)-(9) — this is the executable version of the paper's
Section 3.3 correctness argument.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.invariants import InvariantChecker
from repro.core.state import SchedulerState
from repro.graph.generators import random_dag
from repro.graph.numbering import number_graph


@st.composite
def driver_params(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    edge_prob = draw(st.floats(min_value=0.1, max_value=0.8))
    graph_seed = draw(st.integers(min_value=0, max_value=10**6))
    driver_seed = draw(st.integers(min_value=0, max_value=10**6))
    phases = draw(st.integers(min_value=1, max_value=6))
    emit_prob = draw(st.floats(min_value=0.0, max_value=1.0))
    return n, edge_prob, graph_seed, driver_seed, phases, emit_prob


def drive(n, edge_prob, graph_seed, driver_seed, phases, emit_prob):
    """Run a random schedule to quiescence; returns (state, executed list)."""
    g = random_dag(n, edge_prob=edge_prob, seed=graph_seed)
    nb = number_graph(g)
    state = SchedulerState(nb, checker=InvariantChecker())
    rng = random.Random(driver_seed)
    succs = {
        nb.index_of[v]: sorted(nb.index_of[w] for w in g.successors(v))
        for v in g.vertices()
    }
    executed = []
    started = 0
    runnable = []
    while started < phases or runnable:
        start_now = started < phases and (not runnable or rng.random() < 0.3)
        if start_now:
            runnable.extend(state.start_phase())
            started += 1
            continue
        idx = rng.randrange(len(runnable))
        v, p = runnable.pop(idx)
        outputs = [w for w in succs[v] if rng.random() < emit_prob]
        runnable.extend(state.complete_execution(v, p, outputs))
        executed.append((v, p))
    return state, executed


class TestRandomSchedules:
    @given(driver_params())
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold_and_quiescence_reached(self, params):
        state, executed = drive(*params)
        assert state.all_started_complete()
        assert state.partial_set() == frozenset()
        assert state.full_set() == frozenset()
        assert state.ready_set() == frozenset()

    @given(driver_params())
    @settings(max_examples=80, deadline=None)
    def test_exactly_once(self, params):
        _state, executed = drive(*params)
        assert len(executed) == len(set(executed))

    @given(driver_params())
    @settings(max_examples=80, deadline=None)
    def test_per_vertex_phase_order(self, params):
        """Each vertex executes its phases in strictly increasing order
        (serializability's per-vertex requirement)."""
        _state, executed = drive(*params)
        last = {}
        for v, p in executed:
            assert p > last.get(v, 0)
            last[v] = p

    @given(driver_params())
    @settings(max_examples=80, deadline=None)
    def test_executed_set_is_message_closed(self, params):
        """Sources execute every phase; non-sources execute exactly the
        phases for which they received at least one message.  The driver
        doesn't track messages, so check the weaker closure: every executed
        non-source pair must be justified by *some* earlier-executed
        predecessor pair of the same phase."""
        n, edge_prob, graph_seed, driver_seed, phases, emit_prob = params
        g = random_dag(n, edge_prob=edge_prob, seed=graph_seed)
        nb = number_graph(g)
        state, executed = drive(*params)
        sources = set(nb.source_indices())
        preds = {
            nb.index_of[v]: {nb.index_of[u] for u in g.predecessors(v)}
            for v in g.vertices()
        }
        executed_set = set(executed)
        for p in range(1, phases + 1):
            for s in sources:
                assert (s, p) in executed_set
        for v, p in executed_set:
            if v not in sources:
                assert any((u, p) in executed_set for u in preds[v])

    @given(driver_params())
    @settings(max_examples=40, deadline=None)
    def test_schedule_independence_of_executed_pairs_for_full_emission(self, params):
        """With emit_prob = 1 (every vertex always messages all successors)
        the executed pair set is exactly vertices x phases, regardless of
        the driver's random interleaving."""
        n, edge_prob, graph_seed, _driver_seed, phases, _emit_prob = params
        ref = None
        for driver_seed in (1, 2):
            _state, executed = drive(
                n, edge_prob, graph_seed, driver_seed, phases, 1.0
            )
            got = set(executed)
            expected = {(v, p) for v in range(1, n + 1) for p in range(1, phases + 1)}
            assert got == expected
            if ref is None:
                ref = got
            assert got == ref
