"""The indexed scheduler frontier: :class:`ReadyFrontier`, snapshot
caching, and the batched-vs-singular completion paths."""

from __future__ import annotations

from collections import deque

import pytest

from repro.core.state import ReadyFrontier, SchedulerState, drain_ready_batches
from repro.errors import SchedulerError
from repro.graph.model import ComputationGraph
from repro.graph.numbering import number_graph


def sticky(v: int, workers: int = 2) -> int:
    return (v - 1) % workers


class TestReadyFrontier:
    def test_fifo_per_worker(self):
        f = ReadyFrontier(lambda v: sticky(v))
        f.push([(1, 1), (3, 1), (2, 1), (1, 2), (4, 1)])
        batches, starved = f.drain(lambda w: 100, chunk=100)
        assert not starved
        assert dict(batches) == {
            0: [(1, 1), (3, 1), (1, 2)],
            1: [(2, 1), (4, 1)],
        }
        assert len(f) == 0 and not f

    def test_capacity_limits_and_starvation(self):
        f = ReadyFrontier(lambda v: 0)
        f.push([(1, 1), (1, 2), (1, 3)])
        batches, starved = f.drain(lambda w: 2, chunk=100)
        assert batches == [(0, [(1, 1), (1, 2)])]
        assert starved == {0}
        assert len(f) == 1
        # Leftovers keep their order on the next drain.
        batches, starved = f.drain(lambda w: 2, chunk=100)
        assert batches == [(0, [(1, 3)])] and not starved

    def test_chunk_splits_batches(self):
        f = ReadyFrontier(lambda v: 0)
        f.push([(1, p) for p in range(1, 6)])
        batches, _ = f.drain(lambda w: 100, chunk=2)
        assert [len(pairs) for _, pairs in batches] == [2, 2, 1]

    def test_push_front_preserves_relative_order(self):
        f = ReadyFrontier(lambda v: 0)
        f.push([(1, 3)])
        f.push_front(0, [(1, 1), (1, 2)])
        batches, _ = f.drain(lambda w: 100, chunk=100)
        assert batches == [(0, [(1, 1), (1, 2), (1, 3)])]

    def test_negative_capacity_treated_as_zero(self):
        f = ReadyFrontier(lambda v: 0)
        f.push([(1, 1)])
        batches, starved = f.drain(lambda w: -3, chunk=4)
        assert batches == [] and starved == {0}
        assert len(f) == 1

    def test_chunk_must_be_positive(self):
        f = ReadyFrontier(lambda v: 0)
        with pytest.raises(SchedulerError):
            f.drain(lambda w: 1, chunk=0)

    @pytest.mark.parametrize("workers", [1, 2, 3])
    @pytest.mark.parametrize("chunk", [1, 2, 7])
    def test_equivalent_to_reference_drain(self, workers, chunk):
        import random

        rng = random.Random(workers * 31 + chunk)
        pairs = [
            (rng.randint(1, 9), rng.randint(1, 5)) for _ in range(40)
        ]
        caps = {w: rng.randint(0, 6) for w in range(workers)}

        ref = deque(pairs)
        ref_batches, ref_starved = drain_ready_batches(
            ref, lambda v: sticky(v, workers), lambda w: caps[w], chunk
        )
        f = ReadyFrontier(lambda v: sticky(v, workers))
        f.push(pairs)
        got_batches, got_starved = f.drain(lambda w: caps[w], chunk)

        assert got_starved == ref_starved
        # Same pairs to the same workers in the same per-worker order
        # (cross-worker batch emission order is not part of the contract).
        def by_worker(batches):
            out = {}
            for w, chunk_pairs in batches:
                out.setdefault(w, []).extend(chunk_pairs)
            return out

        assert by_worker(got_batches) == by_worker(ref_batches)
        # Same leftovers, same order.
        leftovers, _ = f.drain(lambda w: 10_000, chunk=10_000)
        assert by_worker(leftovers) == by_worker(
            drain_ready_batches(
                ref, lambda v: sticky(v, workers), lambda w: 10_000, 10_000
            )[0]
        )


def chain_state(n: int = 4) -> SchedulerState:
    g = ComputationGraph()
    names = [f"v{i}" for i in range(n)]
    g.add_vertices(names)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b)
    return SchedulerState(number_graph(g))


class TestSnapshotCaching:
    def test_stats_reads_build_no_snapshots(self):
        st = chain_state()
        st.start_phase()
        st.ready_set()  # warm every cache once
        st.partial_set()
        st.full_set()
        before = st.snapshot_builds
        for _ in range(50):
            st.ready_backlog
            st.in_flight_phases()
            st.complete_phase_count
            st.phase_complete(1)
            st.is_ready((1, 1))
        assert st.snapshot_builds == before

    def test_repeated_snapshots_cached_between_mutations(self):
        st = chain_state()
        st.start_phase()
        before = st.snapshot_builds
        for _ in range(10):
            st.ready_set()
        assert st.snapshot_builds == before + 1
        # A mutation invalidates; the next read rebuilds exactly once.
        st.complete_execution(1, 1, [2])
        for _ in range(10):
            st.ready_set()
        assert st.snapshot_builds == before + 2

    def test_snapshots_track_mutations(self):
        st = chain_state()
        st.start_phase()
        assert st.ready_set() == frozenset({(1, 1)})
        st.complete_execution(1, 1, [2])
        assert st.ready_set() == frozenset({(2, 1)})
        assert (1, 1) not in st.ready_set()

    def test_in_flight_phases_is_complete_suffix(self):
        st = chain_state(3)
        st.start_phase()
        st.start_phase()
        assert st.in_flight_phases() == [1, 2]
        for p in (1, 2):
            st.complete_execution(1, p, [2])
            st.complete_execution(2, p, [3])
            st.complete_execution(3, p, [])
        assert st.in_flight_phases() == []
        assert st.complete_phase_count == 2


class TestBatchedCompletionEquivalence:
    """Satellite: ``complete_execution`` (singular) and
    ``complete_executions`` (batch) must drive identical ready-set
    evolution from identical states."""

    def diamond_state(self):
        g = ComputationGraph.from_edges(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        return SchedulerState(number_graph(g)), number_graph(g).index_of

    def test_singular_delegates_to_batch(self):
        st1 = chain_state()
        st2 = chain_state()
        st1.start_phase()
        st2.start_phase()
        r1 = st1.complete_execution(1, 1, [2])
        r2 = st2.complete_executions([(1, 1, [2])])
        assert r1 == r2
        assert st1.ready_set() == st2.ready_set()
        assert st1.partial_set() == st2.partial_set()
        assert st1.full_set() == st2.full_set()

    def test_batch_matches_singular_loop(self):
        sa, idx = self.diamond_state()
        sb, _ = self.diamond_state()
        for st in (sa, sb):
            st.start_phase()
            st.start_phase()
        a, b, c, d = idx["a"], idx["b"], idx["c"], idx["d"]
        # Make (b,1) and (c,1) simultaneously ready on both states.
        ready_a = sa.complete_execution(a, 1, [b, c])
        ready_b = sb.complete_execution(a, 1, [b, c])
        assert ready_a == ready_b

        singular = []
        for v, p in ready_a:
            singular.extend(sa.complete_execution(v, p, [d]))
        batched = sb.complete_executions([(v, p, [d]) for v, p in ready_b])

        assert sorted(singular) == sorted(batched)
        assert sa.ready_set() == sb.ready_set()
        assert sa.partial_set() == sb.partial_set()
        assert sa.full_set() == sb.full_set()
        assert sa.in_flight_phases() == sb.in_flight_phases()
        assert sa.executed_pairs == sb.executed_pairs

    def test_full_run_evolution_identical(self):
        # Drive two chain states phase-interleaved to quiescence, one
        # completing pairs one at a time, one batching everything ready;
        # the observable set evolution must coincide at every boundary.
        sa = chain_state(4)
        sb = chain_state(4)
        evolution_a, evolution_b = [], []
        pend_a = list(sa.start_phase()) + list(sa.start_phase())
        pend_b = list(sb.start_phase()) + list(sb.start_phase())
        while pend_a or pend_b:
            new_a = []
            for v, p in pend_a:
                new_a.extend(
                    sa.complete_execution(v, p, [v + 1] if v < sa.N else [])
                )
            evolution_a.append((sa.ready_set(), sa.full_set()))
            pend_a = new_a
            pend_b = list(
                sb.complete_executions(
                    [(v, p, [v + 1] if v < sb.N else []) for v, p in pend_b]
                )
            )
            evolution_b.append((sb.ready_set(), sb.full_set()))
        assert evolution_a == evolution_b
        assert sa.all_started_complete() and sb.all_started_complete()
