"""Tests for the serial one-phase-at-a-time oracle."""

import pytest

from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import EMIT_NOTHING, FunctionVertex, PassthroughSource
from repro.events import PhaseInput
from repro.graph.generators import chain_graph, fan_in_graph, fig3_graph

from tests.conftest import ScriptedSource, forward_vertex, signals, sum_vertex


class TestSerialExecutor:
    def test_chain_forwards_values(self, chain_program):
        prog = chain_program(4, {1: "a", 3: "b"})
        res = SerialExecutor(prog).run(signals(4))
        assert res.records["n3"] == [(1, "a"), (3, "b")]
        assert res.engine == "serial"

    def test_delta_execution_counts(self, chain_program):
        # Source emits in phases 1 and 3 only; downstream vertices execute
        # exactly when a message arrives; the source executes every phase.
        prog = chain_program(3, {1: "x", 3: "y"})
        res = SerialExecutor(prog).run(signals(4))
        pairs = res.executions_as_set()
        assert {(1, p) for p in range(1, 5)} <= pairs
        assert (2, 1) in pairs and (2, 3) in pairs
        assert (2, 2) not in pairs and (2, 4) not in pairs
        assert res.execution_count == 4 + 2 + 2

    def test_phase_order_within_records(self, chain_program):
        prog = chain_program(2, {p: p for p in range(1, 6)})
        res = SerialExecutor(prog).run(signals(5))
        phases = [p for p, _v in res.records["n1"]]
        assert phases == sorted(phases)

    def test_fan_in_correlation(self):
        g = fan_in_graph(3)
        behaviors = {
            "src1": ScriptedSource({1: 1}),
            "src2": ScriptedSource({1: 10, 2: 20}),
            "src3": ScriptedSource({2: 300}),
            "sink": sum_vertex(),
        }
        prog = Program(g, behaviors)
        res = SerialExecutor(prog).run(signals(2))
        # Phase 1: src1+src2 = 11.  Phase 2: latched src1=1 + 20 + 300.
        assert res.records["sink"] == [(1, 11), (2, 321)]

    def test_absence_conveys_information(self):
        """A vertex not executing a phase means its value stands: the sink
        keeps using the latched value with no message traffic."""
        g = fig3_graph()
        behaviors = {
            "v1": ScriptedSource({1: 100}),
            "v2": ScriptedSource({1: 1, 2: 2, 3: 3}),
            "v3": sum_vertex(),
            "v4": forward_vertex(),
            "v5": sum_vertex(),
            "v6": forward_vertex(),
        }
        res = SerialExecutor(Program(g, behaviors)).run(signals(3))
        # v3 sums latched {v1, v2}: phase1 101, phase2 102, phase3 103 —
        # v1 contributed once and is latched thereafter.
        sink_values = [v for _p, v in res.records["v5"]]
        assert sink_values[0] == 101 + 1
        assert sink_values[1] == 102 + 2
        assert sink_values[2] == 103 + 3

    def test_rerun_is_reproducible(self, chain_program):
        prog = chain_program(3, {1: 5})
        r1 = SerialExecutor(prog).run(signals(3))
        r2 = SerialExecutor(prog).run(signals(3))
        assert r1.records == r2.records
        assert r1.executions == r2.executions

    def test_zero_phases(self, chain_program):
        prog = chain_program(2, {})
        res = SerialExecutor(prog).run([])
        assert res.execution_count == 0
        assert res.records == {}

    def test_wall_time_positive(self, chain_program):
        prog = chain_program(2, {1: 1})
        res = SerialExecutor(prog).run(signals(1))
        assert res.wall_time >= 0.0
