"""Tests for edge channels and the Δ latching semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ports import NO_VALUE, EdgeChannel, EdgeStore
from repro.errors import SchedulerError
from repro.graph.generators import fig3_graph
from repro.graph.numbering import number_graph


class TestEdgeChannel:
    def test_empty_reads_no_value(self):
        ch = EdgeChannel()
        value, changed = ch.read_at(5)
        assert value is NO_VALUE
        assert not changed

    def test_read_exact_phase_is_changed(self):
        ch = EdgeChannel()
        ch.send(3, "x")
        value, changed = ch.read_at(3)
        assert value == "x" and changed

    def test_read_later_phase_latches(self):
        ch = EdgeChannel()
        ch.send(3, "x")
        value, changed = ch.read_at(7)
        assert value == "x" and not changed

    def test_read_earlier_phase_sees_nothing(self):
        ch = EdgeChannel()
        ch.send(3, "x")
        value, changed = ch.read_at(2)
        assert value is NO_VALUE and not changed

    def test_pipelined_sender_history(self):
        """A sender several phases ahead must not clobber values the
        consumer has yet to read — the pipelining subtlety."""
        ch = EdgeChannel()
        ch.send(1, "a")
        ch.send(2, "b")
        ch.send(5, "c")
        assert ch.read_at(1) == ("a", True)
        assert ch.read_at(2) == ("b", True)
        assert ch.read_at(3) == ("b", False)
        assert ch.read_at(4) == ("b", False)
        assert ch.read_at(5) == ("c", True)

    def test_send_must_be_increasing(self):
        ch = EdgeChannel()
        ch.send(2, "x")
        with pytest.raises(SchedulerError):
            ch.send(2, "y")
        with pytest.raises(SchedulerError):
            ch.send(1, "z")

    def test_send_after_consume_rejected(self):
        ch = EdgeChannel()
        ch.send(1, "a")
        ch.consume_upto(3)
        with pytest.raises(SchedulerError):
            ch.send(2, "late")

    def test_consume_retains_latched_value(self):
        ch = EdgeChannel()
        ch.send(1, "a")
        ch.send(2, "b")
        ch.consume_upto(2)
        # "b" is the latched previous value for phase 3.
        assert ch.read_at(3) == ("b", False)
        assert ch.pending_entries == 1

    def test_consume_gc_drops_superseded(self):
        ch = EdgeChannel()
        for p in range(1, 6):
            ch.send(p, p)
        ch.consume_upto(4)
        assert ch.pending_entries == 2  # the phase-4 latch + phase-5 entry
        assert ch.read_at(5) == (5, True)

    def test_consume_is_monotone(self):
        ch = EdgeChannel()
        ch.send(1, "a")
        ch.consume_upto(3)
        ch.consume_upto(2)  # no-op, must not resurrect anything
        assert ch.read_at(4) == ("a", False)

    def test_none_is_a_valid_message_value(self):
        ch = EdgeChannel()
        ch.send(1, None)
        value, changed = ch.read_at(1)
        assert value is None and changed

    @given(st.lists(st.integers(1, 30), unique=True, min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_property_read_returns_latest_leq(self, phases):
        phases.sort()
        ch = EdgeChannel()
        for p in phases:
            ch.send(p, f"val{p}")
        for q in range(0, 32):
            earlier = [p for p in phases if p <= q]
            value, changed = ch.read_at(q)
            if earlier:
                assert value == f"val{earlier[-1]}"
                assert changed == (earlier[-1] == q)
            else:
                assert value is NO_VALUE and not changed


class TestChangedAtPhaseBoundaries:
    """Satellite audit of ``read_at``'s *changed* bit (ports.py): a message
    is "changed" at exactly its own phase, never before, never after — and
    retirement GC must neither fabricate nor lose that bit."""

    def test_changed_is_exact_not_leq(self):
        ch = EdgeChannel()
        ch.send(4, "x")
        assert ch.read_at(3) == (NO_VALUE, False)   # before the boundary
        assert ch.read_at(4) == ("x", True)          # at the boundary
        assert ch.read_at(5) == ("x", False)         # after: latched only

    def test_changed_survives_consume_at_same_phase(self):
        # consume_upto(p) retains the newest entry <= p as the latch; a
        # re-read at exactly p (e.g. a sibling consumer pass) must still
        # see changed=True — GC is about memory, not semantics.
        ch = EdgeChannel()
        ch.send(3, "x")
        ch.consume_upto(3)
        assert ch.read_at(3) == ("x", True)
        assert ch.read_at(4) == ("x", False)

    def test_gc_does_not_fabricate_changed_for_gap_phases(self):
        ch = EdgeChannel()
        ch.send(1, "a")
        ch.send(2, "b")
        ch.consume_upto(2)
        # The surviving latch entry carries phase 2: changed only there.
        assert ch.read_at(2) == ("b", True)
        assert ch.read_at(3) == ("b", False)

    def test_boundary_with_phase_gap(self):
        # A sender that skipped phases 2..4: the phase-5 boundary flips
        # changed exactly at 5, with the phase-1 value latched in between.
        ch = EdgeChannel()
        ch.send(1, "a")
        ch.send(5, "b")
        assert ch.read_at(1) == ("a", True)
        assert ch.read_at(2) == ("a", False)
        assert ch.read_at(4) == ("a", False)
        assert ch.read_at(5) == ("b", True)
        assert ch.read_at(6) == ("b", False)

    def test_changed_after_interleaved_consume_and_send(self):
        ch = EdgeChannel()
        ch.send(1, "a")
        ch.consume_upto(1)
        ch.send(2, "b")
        assert ch.read_at(2) == ("b", True)
        ch.consume_upto(2)
        assert ch.read_at(2) == ("b", True)
        assert ch.read_at(3) == ("b", False)

    def test_suppression_latch_survives_gc(self):
        # last_sent is the Δ-elision latch; GC keeps the newest entry, so
        # the latch is stable across consume_upto.
        ch = EdgeChannel()
        assert ch.last_sent is NO_VALUE
        ch.send(1, "a")
        ch.send(2, "b")
        ch.consume_upto(2)
        assert ch.last_sent == "b"
        ch.consume_upto(9)
        assert ch.last_sent == "b"

    def test_would_suppress_requires_a_latch(self):
        es = EdgeStore(number_graph(fig3_graph()))
        # First message on an edge is never suppressible.
        assert not es.would_suppress(1, 3, "a")
        es.deliver(1, 1, {3: "a"})
        assert es.would_suppress(1, 3, "a")
        assert not es.would_suppress(1, 3, "b")
        # GC must not disturb the latch.
        es.consume(3, 1)
        assert es.would_suppress(1, 3, "a")


class TestEdgeStore:
    def make(self) -> EdgeStore:
        return EdgeStore(number_graph(fig3_graph()))

    def test_adjacency_tables(self):
        es = self.make()
        assert es.preds[3] == [1, 2]
        assert es.succs[4] == [5, 6]
        assert es.preds[1] == []

    def test_deliver_and_gather(self):
        es = self.make()
        es.deliver(1, 1, {3: "from1"})
        es.deliver(2, 1, {3: "from2", 4: "x"})
        values, changed = es.gather_inputs(3, 1)
        assert values == {1: "from1", 2: "from2"}
        assert set(changed) == {1, 2}

    def test_gather_latched_from_earlier_phase(self):
        es = self.make()
        es.deliver(1, 1, {3: "old"})
        values, changed = es.gather_inputs(3, 2)
        assert values == {1: "old"}
        assert changed == []

    def test_unknown_edge_rejected(self):
        es = self.make()
        with pytest.raises(SchedulerError):
            es.deliver(1, 1, {6: "no such edge"})

    def test_consume_and_memory(self):
        es = self.make()
        for p in range(1, 5):
            es.deliver(1, p, {3: p})
        before = es.total_pending_entries()
        es.consume(3, 4)
        assert es.total_pending_entries() < before
        # Latched value still readable afterwards.
        values, _ = es.gather_inputs(3, 9)
        assert values == {1: 4}


class TestEdgeStoreMemoryCounters:
    def test_live_and_peak_entries(self):
        es = EdgeStore(number_graph(fig3_graph()))
        assert es.live_entries == 0 and es.peak_entries == 0
        es.deliver(1, 1, {3: "a"})
        es.deliver(2, 1, {3: "b", 4: "c"})
        assert es.live_entries == 3
        assert es.peak_entries == 3
        es.consume(3, 1)  # latched entries retained, nothing superseded yet
        assert es.live_entries == 3
        es.deliver(1, 2, {3: "a2"})
        es.deliver(2, 2, {3: "b2", 4: "c2"})
        assert es.peak_entries == 6
        es.consume(3, 2)  # drops the superseded phase-1 entries on 1->3, 2->3
        assert es.live_entries == 4
        assert es.peak_entries == 6

    def test_consume_upto_returns_dropped_count(self):
        ch = EdgeChannel()
        for p in range(1, 6):
            ch.send(p, p)
        assert ch.consume_upto(4) == 3  # keeps the phase-4 latch + phase-5
        assert ch.consume_upto(4) == 0  # idempotent

    def test_engine_reports_peak(self):
        from repro.core.program import Program
        from repro.runtime.engine import ParallelEngine
        from repro.streams.generators import phase_signals
        from repro.streams.workloads import sum_behaviors
        from repro.graph.generators import chain_graph

        g = chain_graph(3)
        prog = Program(g, sum_behaviors(g, seed=1))
        res = ParallelEngine(prog, num_threads=2).run(phase_signals(20))
        assert res.stats["edge_entries_peak"] >= 1
        assert res.stats["edge_entries_final"] <= res.stats["edge_entries_peak"]
