"""Tests for SchedulerState — the Listing 1/2 set manipulations.

The centrepiece is the exact reproduction of the paper's Figure 3 step
sequence, plus error paths (exactly-once, non-ready execution, bad edge
directions) and the x-frontier behaviour (clamping, completion cascades).
"""

import pytest

from repro.core.invariants import InvariantChecker
from repro.core.state import SchedulerState
from repro.errors import DuplicateExecutionError, SchedulerError
from repro.graph.generators import chain_graph, fan_in_graph, fig3_graph
from repro.graph.numbering import number_graph


def fig3_state(checker: bool = True) -> SchedulerState:
    nb = number_graph(fig3_graph())
    return SchedulerState(nb, checker=InvariantChecker() if checker else None)


class TestInitialState:
    def test_empty_sets(self):
        st = fig3_state()
        assert st.partial_set() == frozenset()
        assert st.full_set() == frozenset()
        assert st.ready_set() == frozenset()

    def test_x_defaults(self):
        st = fig3_state()
        assert st.x(0) == 6  # x_0 = N
        assert st.x(1) == 0  # unstarted phases
        assert st.x(99) == 0

    def test_x_negative_phase_rejected(self):
        with pytest.raises(SchedulerError):
            fig3_state().x(-1)

    def test_pmax_zero(self):
        st = fig3_state()
        assert st.pmax == 0
        assert st.next_phase == 1
        assert st.all_started_complete()  # vacuously

    def test_m_passthrough(self):
        st = fig3_state()
        assert [st.m(v) for v in range(7)] == [2, 2, 4, 4, 6, 6, 6]


class TestStartPhase:
    def test_sources_enter_full_and_ready(self):
        st = fig3_state()
        newly = st.start_phase()
        assert newly == [(1, 1), (2, 1)]
        assert st.full_set() == {(1, 1), (2, 1)}
        assert st.ready_set() == {(1, 1), (2, 1)}
        assert st.pmax == 1
        assert st.msg(1, 1) and st.msg(2, 1)

    def test_second_phase_sources_full_but_not_ready(self):
        st = fig3_state()
        st.start_phase()
        newly = st.start_phase()
        # (1,2)/(2,2) are full, but ready only contains the min phase per
        # vertex, which is still phase 1.
        assert newly == []
        assert {(1, 2), (2, 2)} <= st.full_set()
        assert st.ready_set() == {(1, 1), (2, 1)}

    def test_in_flight_phases(self):
        st = fig3_state()
        st.start_phase()
        st.start_phase()
        assert st.in_flight_phases() == [1, 2]


class TestFigure3Narrative:
    """The eight steps of Figure 3, with exact set memberships."""

    def test_full_sequence(self):
        st = fig3_state()

        # (a) Phase 1 initiated.
        st.start_phase()
        assert st.ready_set() == {(1, 1), (2, 1)}

        # (b) (1,1) executed, generated output (to vertex 3).
        newly = st.complete_execution(1, 1, [3])
        assert newly == []
        assert st.partial_set() == {(3, 1)}  # diamond in the figure
        assert st.ready_set() == {(2, 1)}
        assert st.x(1) == 1

        # (c) Phase 2 initiated.
        newly = st.start_phase()
        assert newly == [(1, 2)]
        assert st.full_set() == {(2, 1), (1, 2), (2, 2)}
        assert st.ready_set() == {(2, 1), (1, 2)}

        # (d) (1,2) executed, generated no output.
        newly = st.complete_execution(1, 2, [])
        assert newly == []
        assert st.x(2) == 1  # clamped to x_1

        # (e) (2,1) executed, output to 3 and 4.
        newly = st.complete_execution(2, 1, [3, 4])
        assert set(newly) == {(2, 2), (3, 1), (4, 1)}
        assert st.partial_set() == frozenset()
        assert st.x(1) == 2
        assert {(3, 1), (4, 1)} <= st.ready_set()

        # (f) (2,2) executed, output to 3 and 4.
        newly = st.complete_execution(2, 2, [3, 4])
        assert newly == []  # (3,2)/(4,2) full, but phase-1 pairs are ahead
        assert {(3, 2), (4, 2)} <= st.full_set()
        assert st.ready_set() == {(3, 1), (4, 1)}
        assert st.x(2) == 2

        # (g) (3,1) executed, output to 5.
        newly = st.complete_execution(3, 1, [5])
        assert newly == [(3, 2)]
        assert st.partial_set() == {(5, 1)}
        assert st.x(1) == 3

        # (h) (4,1) executed, output to 5 and 6.
        newly = st.complete_execution(4, 1, [5, 6])
        assert set(newly) == {(4, 2), (5, 1), (6, 1)}
        assert st.partial_set() == frozenset()
        assert st.x(1) == 4

    def test_run_to_completion(self):
        st = fig3_state()
        st.start_phase()
        st.start_phase()
        pending = list(st.ready_set())
        outputs = {1: [3], 2: [3, 4], 3: [5], 4: [5, 6], 5: [], 6: []}
        executed = set()
        while pending:
            v, p = pending.pop(0)
            newly = st.complete_execution(v, p, outputs[v])
            executed.add((v, p))
            pending.extend(newly)
        assert st.all_started_complete()
        assert st.phase_complete(1) and st.phase_complete(2)
        assert executed == {(v, p) for v in range(1, 7) for p in (1, 2)}
        assert st.executed_pairs == 12
        assert st.complete_phase_count == 2


class TestErrorPaths:
    def test_executing_non_ready_pair_rejected(self):
        st = fig3_state()
        st.start_phase()
        with pytest.raises(SchedulerError):
            st.complete_execution(3, 1, [])

    def test_double_execution_rejected(self):
        st = fig3_state()
        st.start_phase()
        st.complete_execution(1, 1, [])
        with pytest.raises(DuplicateExecutionError):
            st.complete_execution(1, 1, [])

    def test_output_to_lower_index_rejected(self):
        st = fig3_state()
        st.start_phase()
        st.complete_execution(1, 1, [3])
        st.complete_execution(2, 1, [3])
        # (3,1) now ready; an output to vertex 2 violates edge direction.
        with pytest.raises(SchedulerError):
            st.complete_execution(3, 1, [2])

    def test_output_out_of_range_rejected(self):
        st = fig3_state()
        st.start_phase()
        with pytest.raises(SchedulerError):
            st.complete_execution(1, 1, [99])

    def test_out_of_order_phase_execution_impossible(self):
        st = fig3_state()
        st.start_phase()
        st.start_phase()
        # (1,2) becomes ready only after (1,1) completes.
        assert (1, 2) not in st.ready_set()
        st.complete_execution(1, 1, [])
        assert (1, 2) in st.ready_set()


class TestXFrontier:
    def test_clamp_prevents_overtaking(self):
        st = fig3_state()
        st.start_phase()
        st.start_phase()
        # Execute everything in phase 2 that becomes available without
        # finishing phase 1: only (1,2) after (1,1), etc.
        st.complete_execution(1, 1, [])
        st.complete_execution(1, 2, [])
        # Phase 2 cannot be "ahead" of phase 1: x_2 <= x_1 always.
        assert st.x(2) <= st.x(1)

    def test_silent_vertices_complete_phase(self):
        """Sources that emit nothing still finish the phase: x reaches N
        without any vertex beyond the sources executing."""
        nb = number_graph(fan_in_graph(3))
        st = SchedulerState(nb, checker=InvariantChecker())
        st.start_phase()
        st.complete_execution(1, 1, [])
        st.complete_execution(2, 1, [])
        st.complete_execution(3, 1, [])
        # No message ever reached the sink, so the sink never executes —
        # yet the phase completes (absence of messages is information).
        assert st.phase_complete(1)
        assert st.executed_pairs == 3

    def test_completion_cascades_to_later_phases(self):
        """Finishing phase p can complete p+1 .. pmax in one update."""
        nb = number_graph(chain_graph(2))
        st = SchedulerState(nb, checker=InvariantChecker())
        st.start_phase()
        st.start_phase()
        st.start_phase()
        st.complete_execution(1, 1, [])
        st.complete_execution(1, 2, [])
        st.complete_execution(1, 3, [])
        # Phases 2 and 3 were held at x = x_1; completing phase 1 must
        # cascade x_2 = x_3 = N.
        assert not st.phase_complete(1) is True or True
        assert st.x(1) == 2 and st.x(2) == 2 and st.x(3) == 2
        assert st.all_started_complete()

    def test_phase_complete_requires_started(self):
        st = fig3_state()
        assert not st.phase_complete(1)
        assert not st.phase_complete(0)


class TestDuplicateMessages:
    def test_two_predecessors_message_same_pair(self):
        """(3,1) receives messages from both 1 and 2; the partial-set union
        must be idempotent and the pair must execute once."""
        st = fig3_state()
        st.start_phase()
        st.complete_execution(1, 1, [3])
        assert st.partial_set() == {(3, 1)}
        st.complete_execution(2, 1, [3])  # second message for (3,1)
        assert (3, 1) in st.ready_set()
        st.complete_execution(3, 1, [])
        assert (3, 1) not in st.ready_set()


class TestRepr:
    def test_repr_mentions_counts(self):
        st = fig3_state()
        st.start_phase()
        assert "pmax=1" in repr(st)
        assert "full=2" in repr(st)


class TestBatchedCompletion:
    """``complete_executions`` — the batched commit path's state apply.

    A batch must reach exactly the state sequential application reaches,
    and a batch of one must be indistinguishable from
    ``complete_execution``.
    """

    FIG3_OUTPUTS = {1: [3], 2: [3, 4], 3: [5], 4: [5, 6], 5: [], 6: []}

    @staticmethod
    def _snapshot(st):
        return (
            st.partial_set(),
            st.full_set(),
            st.ready_set(),
            tuple(st.x(p) for p in range(0, 4)),
            st.pmax,
            st.executed_pairs,
            st.complete_phase_count,
        )

    def test_empty_batch_is_noop(self):
        st = fig3_state()
        st.start_phase()
        before = self._snapshot(st)
        assert st.complete_executions([]) == []
        assert self._snapshot(st) == before

    def test_singleton_batch_equals_single_completion(self):
        a, b = fig3_state(), fig3_state()
        for st in (a, b):
            st.start_phase()
        ra = a.complete_executions([(1, 1, [3])])
        rb = b.complete_execution(1, 1, [3])
        assert ra == rb
        assert self._snapshot(a) == self._snapshot(b)

    def test_batch_equals_sequential_application(self):
        a, b = fig3_state(), fig3_state()
        for st in (a, b):
            st.start_phase()
            st.start_phase()
        batch = [(1, 1, [3]), (2, 1, [3, 4])]
        ra = a.complete_executions(batch)
        rb = []
        for v, p, targets in batch:
            rb.extend(b.complete_execution(v, p, targets))
        assert set(ra) == set(rb)
        assert self._snapshot(a) == self._snapshot(b)

    def test_whole_run_in_ready_batches(self):
        # Drain the Figure 3 program to quiescence by always committing
        # the *entire* ready set as one batch; the final state must match
        # the one-at-a-time run.
        batched, serial = fig3_state(), fig3_state()
        for st in (batched, serial):
            st.start_phase()
            st.start_phase()

        while batched.ready_set():
            batch = [
                (v, p, self.FIG3_OUTPUTS[v])
                for v, p in sorted(batched.ready_set())
            ]
            batched.complete_executions(batch)

        pending = sorted(serial.ready_set())
        while pending:
            v, p = pending.pop(0)
            newly = serial.complete_execution(v, p, self.FIG3_OUTPUTS[v])
            pending.extend(newly)
            pending.sort()

        assert batched.all_started_complete()
        assert self._snapshot(batched) == self._snapshot(serial)
        assert batched.executed_pairs == 12

    def test_non_ready_pair_in_batch_rejected(self):
        st = fig3_state()
        st.start_phase()
        with pytest.raises(SchedulerError):
            st.complete_executions([(1, 1, [3]), (3, 1, [5])])

    def test_duplicate_pair_in_batch_rejected(self):
        st = fig3_state()
        st.start_phase()
        with pytest.raises(DuplicateExecutionError):
            st.complete_executions([(1, 1, [3]), (1, 1, [3])])

    def test_bad_output_target_in_batch_rejected(self):
        st = fig3_state()
        st.start_phase()
        with pytest.raises(SchedulerError):
            st.complete_executions([(2, 1, [1])])  # edge to lower index
