"""The stress driver: clean campaigns pass, seeded bugs are found,
failures shrink and replay.

The injected-fault tests are the acceptance test for the whole harness:
a green fuzz run is only evidence if the same harness demonstrably turns
red when a known concurrency bug is planted.
"""

import pytest

from repro.testing import (
    FaultPlan,
    ReplayPolicy,
    WorkloadSpec,
    fuzz,
    make_policy,
    replay_failure,
    run_one,
    spec_for_run,
)


class TestWorkloadSpec:
    def test_build_is_reproducible(self):
        spec = spec_for_run(0, 3)
        prog_a, phases_a = spec.build()
        prog_b, phases_b = spec.build()
        assert sorted(prog_a.graph.vertices()) == sorted(prog_b.graph.vertices())
        assert len(phases_a) == len(phases_b) == spec.phases

    def test_specs_vary_across_runs(self):
        specs = {spec_for_run(0, i) for i in range(10)}
        assert len(specs) > 1

    def test_sources_are_delta_sparse(self):
        # With a low delta probability, some phases emit nothing.
        spec = WorkloadSpec(
            n_vertices=3, edge_prob=0.5, graph_seed=1, phases=12,
            delta_prob=0.3, stream_seed=2, threads=2,
        )
        program, phases = spec.build()
        from repro.core.serial import SerialExecutor

        result = SerialExecutor(program).run(phases)
        # Every phase executes its sources, but downstream pairs only run
        # when a message arrived, so executions < vertices * phases.
        assert result.execution_count < spec.n_vertices * spec.phases


class TestCleanCampaign:
    def test_bounded_fuzz_passes_with_distinct_interleavings(self):
        report = fuzz(runs=30, seed=0)
        assert report.ok, report.summary()
        assert report.distinct_interleavings == 30
        assert report.total_checks > 0

    def test_campaign_reproducible(self):
        a = fuzz(runs=10, seed=5)
        b = fuzz(runs=10, seed=5)
        assert a.total_steps == b.total_steps
        assert a.distinct_interleavings == b.distinct_interleavings

    def test_single_run_passes_each_policy(self):
        spec = spec_for_run(1, 0)
        for policy in ("random", "round-robin", "priority"):
            outcome = run_one(spec, make_policy(policy, 6))
            assert outcome.passed, outcome.reason


@pytest.mark.parametrize(
    "fault", ["unlocked_commit", "unlocked_start_phase", "duplicate_enqueue"]
)
class TestSeededBugsAreFound:
    def test_fault_found_within_bounded_runs(self, fault):
        # Acceptance criterion: the seeded bug must be found within 100
        # explored schedules, reporting a replayable (seed, policy, trace).
        report = fuzz(runs=100, seed=0, faults=FaultPlan.named(fault))
        assert not report.ok, f"{fault} survived {report.runs} schedules"
        failure = report.failures[0]
        assert failure.trace_names, "failure must carry its step trace"
        assert failure.reason
        # The printed reproduction recipe is complete.
        summary = failure.summary()
        assert str(failure.master_seed) in summary
        assert failure.policy_name in summary

    def test_failure_replays_exactly(self, fault):
        plan = FaultPlan.named(fault)
        report = fuzz(runs=100, seed=0, faults=plan, do_shrink=False)
        failure = report.failures[0]
        replayed = replay_failure(failure, exact=True, faults=plan)
        assert not replayed.passed

    def test_failure_replays_by_policy_seed(self, fault):
        plan = FaultPlan.named(fault)
        report = fuzz(runs=100, seed=0, faults=plan, do_shrink=False)
        failure = report.failures[0]
        outcome = run_one(
            failure.spec,
            make_policy(failure.policy_name, failure.policy_seed),
            faults=plan,
        )
        assert not outcome.passed


class TestShrinking:
    def test_shrunk_spec_still_fails_and_is_smaller(self):
        plan = FaultPlan.named("unlocked_commit")
        report = fuzz(runs=100, seed=0, faults=plan)
        failure = report.failures[0]
        shrunk = failure.shrunk_spec
        assert shrunk is not None
        size = lambda s: (s.phases, s.n_vertices, s.threads)  # noqa: E731
        assert size(shrunk) <= size(failure.spec)
        outcome = run_one(
            shrunk,
            make_policy(failure.policy_name, failure.policy_seed),
            faults=plan,
        )
        assert not outcome.passed


class TestFaultPlan:
    def test_named_and_str(self):
        plan = FaultPlan.named("duplicate_enqueue")
        assert plan.duplicate_enqueue and not plan.unlocked_commit
        assert "duplicate_enqueue" in str(plan)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.named("cosmic_rays")

    def test_engine_ignores_absent_plan(self):
        # faults=None must inject nothing: a clean run stays clean.
        outcome = run_one(spec_for_run(2, 0), make_policy("random", 0))
        assert outcome.passed, outcome.reason
