"""The virtual scheduler kernel: determinism, policies, liveness checks."""

import pytest

from repro.errors import (
    DeadlockError,
    ReplayDivergenceError,
    ScheduleError,
    ScheduleLimitError,
)
from repro.testing.schedule import (
    PriorityFuzzPolicy,
    RandomPolicy,
    ReplayPolicy,
    RoundRobinPolicy,
    VirtualBackend,
    VirtualScheduler,
    make_policy,
)


def counter_tasks(sched, backend, n_tasks=3, iters=5):
    """n tasks interleaving increments with explicit yield points."""
    log = []
    lock = backend.lock()

    def work(tid):
        for i in range(iters):
            with lock:
                log.append((tid, i))
            sched.switch(f"tick-{tid}")

    tasks = [backend.thread(target=work, args=(t,), name=f"t{t}") for t in range(n_tasks)]
    for t in tasks:
        t.start()
    return tasks, log


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            sched = VirtualScheduler(policy=RandomPolicy(seed))
            backend = VirtualBackend(sched)
            _tasks, log = counter_tasks(sched, backend)
            sched.run_all()
            return list(log), sched.trace_names()

        log_a, trace_a = run(7)
        log_b, trace_b = run(7)
        assert log_a == log_b
        assert trace_a == trace_b

    def test_different_seeds_diverge(self):
        # With 3 tasks x 5 yield points, two seeds agreeing on every
        # choice would be astronomically unlikely.
        def run(seed):
            sched = VirtualScheduler(policy=RandomPolicy(seed))
            backend = VirtualBackend(sched)
            _tasks, log = counter_tasks(sched, backend)
            sched.run_all()
            return sched.trace_names()

        assert run(1) != run(2)

    def test_recorded_trace_replays_exactly(self):
        sched = VirtualScheduler(policy=RandomPolicy(3))
        backend = VirtualBackend(sched)
        _tasks, log = counter_tasks(sched, backend)
        sched.run_all()
        recorded = sched.trace_names()

        replay = VirtualScheduler(policy=ReplayPolicy(recorded))
        backend2 = VirtualBackend(replay)
        _tasks2, log2 = counter_tasks(replay, backend2)
        replay.run_all()
        assert replay.trace_names() == recorded
        assert log2 == log

    def test_replay_divergence_detected(self):
        sched = VirtualScheduler(policy=ReplayPolicy(["no-such-task"]))
        backend = VirtualBackend(sched)
        t = backend.thread(target=lambda: sched.switch("x"), name="real")
        t.start()
        with pytest.raises(ReplayDivergenceError):
            sched.run_all()
        sched.shutdown()


class TestPolicies:
    @pytest.mark.parametrize("name", ["random", "round-robin", "priority"])
    def test_every_policy_completes_and_reproduces(self, name):
        def run():
            sched = VirtualScheduler(policy=make_policy(name, 11))
            backend = VirtualBackend(sched)
            _tasks, log = counter_tasks(sched, backend)
            sched.run_all()
            return list(log)

        assert run() == run()

    def test_round_robin_is_fair(self):
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        backend = VirtualBackend(sched)
        _tasks, log = counter_tasks(sched, backend, n_tasks=2, iters=4)
        sched.run_all()
        # Both tasks progress; neither finishes all its iterations before
        # the other starts.
        first_done = next(i for i, (t, k) in enumerate(log) if k == 3)
        other = 1 - log[first_done][0]
        assert any(t == other for t, _k in log[:first_done])

    def test_priority_policy_runs_bursts(self):
        sched = VirtualScheduler(policy=PriorityFuzzPolicy(seed=5))
        backend = VirtualBackend(sched)
        _tasks, log = counter_tasks(sched, backend, n_tasks=3, iters=6)
        sched.run_all()
        assert sorted(log) == [(t, i) for t in range(3) for i in range(6)]

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ScheduleError):
            make_policy("fifo")


class TestLiveness:
    def test_deadlock_detected_exactly(self):
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        backend = VirtualBackend(sched)
        a, b = backend.lock(), backend.lock()

        def grab(first, second, me):
            with first:
                sched.switch(f"{me}-mid")
                with second:
                    pass

        t1 = backend.thread(target=grab, args=(a, b, "t1"), name="t1")
        t2 = backend.thread(target=grab, args=(b, a, "t2"), name="t2")
        t1.start()
        t2.start()
        with pytest.raises(DeadlockError) as info:
            sched.run_all()
        assert set(info.value.blocked) == {"t1", "t2"}
        assert info.value.trace_tail  # the divergent step trace is attached
        sched.shutdown()

    def test_step_limit_catches_livelock(self):
        sched = VirtualScheduler(policy=RoundRobinPolicy(), max_steps=100)
        backend = VirtualBackend(sched)

        def spin():
            while True:
                sched.switch("spin")

        backend.thread(target=spin, name="spinner").start()
        with pytest.raises(ScheduleLimitError):
            sched.run_all()
        sched.shutdown()

    def test_timeout_wait_uses_virtual_time(self):
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        backend = VirtualBackend(sched)
        ev = backend.event()
        seen = []

        def waiter():
            seen.append(ev.wait(timeout=5.0))
            seen.append(sched.now())

        backend.thread(target=waiter, name="w").start()
        sched.run_all()
        # The event never fires: the wait times out instantly in real
        # time, with the virtual clock advanced to the deadline.
        assert seen == [False, 5.0]

    def test_sleep_advances_clock_without_wall_time(self):
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        backend = VirtualBackend(sched)

        def sleeper():
            backend.sleep(1000.0)

        backend.thread(target=sleeper, name="s").start()
        sched.run_all()
        assert sched.now() == 1000.0


class TestPrimitives:
    def test_lock_mutual_exclusion(self):
        sched = VirtualScheduler(policy=RandomPolicy(9))
        backend = VirtualBackend(sched)
        lock = backend.lock()
        depth = [0]
        bad = []

        def critical(me):
            for _ in range(10):
                with lock:
                    depth[0] += 1
                    sched.switch(f"{me}-inside")  # tempt a second entrant
                    if depth[0] != 1:
                        bad.append(depth[0])
                    depth[0] -= 1
                sched.switch(f"{me}-outside")

        for i in range(3):
            backend.thread(target=critical, args=(i,), name=f"c{i}").start()
        sched.run_all()
        assert bad == []

    def test_condition_wait_notify(self):
        sched = VirtualScheduler(policy=RandomPolicy(4))
        backend = VirtualBackend(sched)
        cond = backend.condition()
        items = []
        got = []

        def producer():
            for i in range(5):
                with cond:
                    items.append(i)
                    cond.notify()
                sched.switch("produced")

        def consumer():
            while len(got) < 5:
                with cond:
                    while not items:
                        cond.wait()
                    got.append(items.pop(0))

        backend.thread(target=producer, name="prod").start()
        backend.thread(target=consumer, name="cons").start()
        sched.run_all()
        assert got == list(range(5))

    def test_semaphore_bounds_concurrency(self):
        sched = VirtualScheduler(policy=RandomPolicy(13))
        backend = VirtualBackend(sched)
        sem = backend.semaphore(2)
        active = [0]
        peak = [0]

        def user(me):
            sem.acquire()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            sched.switch(f"{me}-holding")
            active[0] -= 1
            sem.release()

        for i in range(5):
            backend.thread(target=user, args=(i,), name=f"u{i}").start()
        sched.run_all()
        assert peak[0] <= 2

    def test_task_error_is_captured(self):
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        backend = VirtualBackend(sched)

        def boom():
            raise ValueError("bang")

        t = backend.thread(target=boom, name="boom")
        t.start()
        sched.run_all()
        assert isinstance(t.error, ValueError)

    def test_shutdown_reaps_blocked_tasks(self):
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        backend = VirtualBackend(sched)
        ev = backend.event()

        def waits_forever():
            ev.wait()

        t = backend.thread(target=waits_forever, name="stuck")
        t.start()
        with pytest.raises(DeadlockError):
            sched.run_all()
        sched.shutdown()
        assert not t.is_alive()
