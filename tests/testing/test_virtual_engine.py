"""The production engine under the virtual scheduler.

These tests run the *unmodified* :class:`ParallelEngine` on cooperative
tasks: every named workload must match the serial oracle under several
seeded interleavings, and runs must be bit-reproducible per seed.
"""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.serial import SerialExecutor
from repro.runtime.engine import ParallelEngine
from repro.streams.workloads import (
    fanin_workload,
    fig1_workload,
    pipeline_workload,
)
from repro.testing.monitor import RaceMonitor
from repro.testing.schedule import (
    RandomPolicy,
    ReplayPolicy,
    VirtualBackend,
    VirtualScheduler,
    make_policy,
)

WORKLOADS = {
    "pipeline": lambda: pipeline_workload(depth=4, phases=3, seed=11),
    "fanin": lambda: fanin_workload(fan=3, phases=3, seed=12),
    "fig1": lambda: fig1_workload(phases=3, seed=13),
}


def run_virtual(program, phases, policy, threads=3):
    sched = VirtualScheduler(policy=policy)
    monitor = RaceMonitor().attach(sched)
    engine = ParallelEngine(
        program,
        num_threads=threads,
        checker=monitor,
        tracer=monitor,
        backend=VirtualBackend(sched),
    )
    try:
        result = engine.run(phases)
    finally:
        sched.shutdown()
    return result, sched, monitor


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_workload_serializable_under_virtual_schedules(name, seed):
    program, phases = WORKLOADS[name]()
    oracle = SerialExecutor(program).run(phases)
    result, _sched, monitor = run_virtual(
        program, phases, RandomPolicy(seed)
    )
    assert monitor.ok, monitor.report()
    report = check_serializable(oracle, result)
    assert report, str(report)


@pytest.mark.parametrize("policy_name", ["random", "round-robin", "priority"])
def test_engine_run_is_reproducible_per_seed(policy_name):
    def once():
        program, phases = pipeline_workload(depth=3, phases=3, seed=5)
        _result, sched, _monitor = run_virtual(
            program, phases, make_policy(policy_name, 21)
        )
        return sched.trace_names()

    assert once() == once()


def test_engine_trace_replays_exactly():
    program, phases = fanin_workload(fan=3, phases=2, seed=8)
    _result, sched, _monitor = run_virtual(program, phases, RandomPolicy(99))
    recorded = sched.trace_names()

    program2, phases2 = fanin_workload(fan=3, phases=2, seed=8)
    _result2, sched2, monitor2 = run_virtual(
        program2, phases2, ReplayPolicy(recorded)
    )
    assert monitor2.ok
    assert sched2.trace_names() == recorded


def test_single_worker_still_overlaps_with_environment():
    # The paper's point: even k=1 has two threads (worker + environment)
    # contending for the scheduling state.
    program, phases = pipeline_workload(depth=3, phases=4, seed=3)
    oracle = SerialExecutor(program).run(phases)
    result, sched, monitor = run_virtual(
        program, phases, RandomPolicy(17), threads=1
    )
    assert monitor.ok, monitor.report()
    assert check_serializable(oracle, result)
    tasks = {s.task for s in sched.trace}
    assert "environment" in tasks and "compute-0" in tasks


def test_virtual_clock_used_for_engine_timing():
    program, phases = pipeline_workload(depth=3, phases=2, seed=4)
    result, _sched, _monitor = run_virtual(program, phases, RandomPolicy(1))
    # Wall time is virtual: no timed waits fire in a clean run, so the
    # elapsed virtual time is exactly zero — proof no real clock leaked in.
    assert result.wall_time == 0.0
