"""The race monitor: clean runs stay clean, violations are caught and
stamped with their schedule step."""

import pytest

from repro.core.state import SchedulerState
from repro.errors import InvariantViolation
from repro.graph.generators import fig3_graph
from repro.graph.numbering import number_graph
from repro.testing.monitor import RaceMonitor
from repro.testing.schedule import RoundRobinPolicy, VirtualScheduler


@pytest.fixture
def numbering():
    return number_graph(fig3_graph())


def drive_clean(state):
    """The Figure-3 execution sequence (a correct schedule)."""
    state.start_phase()
    state.complete_execution(1, 1, [3])
    state.start_phase()
    state.complete_execution(1, 2, [])
    state.complete_execution(2, 1, [3, 4])
    state.complete_execution(2, 2, [3, 4])
    state.complete_execution(3, 1, [5])
    state.complete_execution(4, 1, [5, 6])


class TestCleanRuns:
    def test_fig3_sequence_is_clean(self, numbering):
        monitor = RaceMonitor()
        state = SchedulerState(numbering, checker=monitor)
        drive_clean(state)
        assert monitor.ok
        assert monitor.checks_run == 8
        assert "clean" in monitor.report()
        monitor.raise_if_violations()  # no-op when clean

    def test_tracer_protocol_lifecycle_clean(self, numbering):
        monitor = RaceMonitor()
        state = SchedulerState(numbering, checker=monitor)
        pairs = state.start_phase()
        monitor.phase_started(1)
        for pair in pairs:
            monitor.enqueued(pair)
        v, p = pairs[0]
        monitor.execute_begin((v, p), worker=0)
        for pair in state.complete_execution(v, p, [3]):
            monitor.enqueued(pair)
        monitor.execute_end((v, p), worker=0)
        assert monitor.ok


class TestViolations:
    def test_double_enqueue_flagged(self, numbering):
        monitor = RaceMonitor()
        monitor.enqueued((1, 1))
        monitor.enqueued((1, 1))
        assert not monitor.ok
        assert "enqueued more than once" in monitor.report()

    def test_execute_begin_outside_ready_flagged(self, numbering):
        monitor = RaceMonitor()
        state = SchedulerState(numbering, checker=monitor)
        state.start_phase()  # runs check(), capturing the state
        monitor.execute_begin((6, 1), worker=1)  # (6,1) is not ready yet
        assert not monitor.ok
        assert "neither ready nor run-claimed" in monitor.report()

    def test_double_execution_flagged(self, numbering):
        monitor = RaceMonitor()
        monitor.execute_end((2, 1), worker=0)
        monitor.execute_end((2, 1), worker=1)
        assert not monitor.ok
        assert "twice" in monitor.report()

    def test_non_contiguous_phase_start_flagged(self, numbering):
        monitor = RaceMonitor()
        monitor.phase_started(1)
        monitor.phase_started(3)
        assert not monitor.ok

    def test_raise_if_violations(self, numbering):
        monitor = RaceMonitor()
        monitor.enqueued((1, 1))
        monitor.enqueued((1, 1))
        with pytest.raises(InvariantViolation):
            monitor.raise_if_violations()

    def test_monitor_does_not_raise_from_check(self, numbering):
        # Unlike the strict InvariantChecker, the monitor must keep the
        # engine coherent: check() records and returns.
        monitor = RaceMonitor()
        state = SchedulerState(numbering, checker=monitor)
        state.start_phase()
        monitor._executed.add((1, 1))  # fake an executed pair still live
        state.complete_execution(2, 1, [3, 4])  # triggers check()
        assert not monitor.ok
        assert "reappeared" in monitor.report()


class TestStepStamping:
    def test_violation_carries_schedule_step_and_tail(self):
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        monitor = RaceMonitor().attach(sched)

        # Manufacture some schedule history.
        from repro.testing.schedule import VirtualBackend

        backend = VirtualBackend(sched)
        t = backend.thread(
            target=lambda: [sched.switch(f"p{i}") for i in range(4)], name="w"
        )
        t.start()
        sched.run_all()
        monitor.enqueued((1, 1))
        monitor.enqueued((1, 1))
        v = monitor.violations[0]
        assert v.step == sched.steps - 1
        assert v.trace_tail
        assert "step" in monitor.report()
