"""The sharded-vs-oracle fuzz campaign: clean campaigns pass, specs are
reproducible, and the judge actually detects divergence."""

from dataclasses import replace

import pytest

from repro.testing import (
    ShardedSpec,
    fuzz_sharded,
    run_one_sharded,
    sharded_spec_for_run,
)


class TestShardedSpec:
    def test_reproducible(self):
        assert sharded_spec_for_run(0, 3) == sharded_spec_for_run(0, 3)

    def test_varies_across_runs(self):
        specs = {sharded_spec_for_run(0, i) for i in range(12)}
        assert len(specs) > 1
        shards = {s.shards for s in specs}
        assert len(shards) > 1

    def test_pinned_axes(self):
        spec = sharded_spec_for_run(0, 0, shards=4, engine="serial")
        assert spec.shards == 4
        assert spec.engine == "serial"

    def test_describe_mentions_layout(self):
        text = sharded_spec_for_run(7, 2).describe()
        assert "shards" in text


class TestCleanCampaign:
    def test_bounded_campaign_passes(self):
        report = fuzz_sharded(runs=6, seed=0)
        assert report.ok, report.summary()
        assert report.runs == 6
        assert report.campaign == "sharded"
        assert "oracle-equal" in report.summary()

    def test_campaign_reproducible(self):
        a = fuzz_sharded(runs=5, seed=3)
        b = fuzz_sharded(runs=5, seed=3)
        assert a.summary() == b.summary()

    def test_single_run_clean(self):
        spec = sharded_spec_for_run(1, 0, engine="serial")
        assert run_one_sharded(spec) is None


class TestJudgeDetectsDivergence:
    """A green campaign is only evidence if the judge demonstrably turns
    red when the shard layer misbehaves."""

    def test_dropped_merge_entries_are_caught(self, monkeypatch):
        from repro.sharding.merge import WatermarkMerger

        real_offer = WatermarkMerger.offer

        def lossy_offer(self, shard, timestamp, entries):
            # Silently drop shard 0's contributions — exactly the kind
            # of quiet data loss the oracle comparison must expose.
            if shard == 0:
                entries = []
            return real_offer(self, shard, timestamp, entries)

        monkeypatch.setattr(WatermarkMerger, "offer", lossy_offer)
        spec = sharded_spec_for_run(0, 0, shards=2, engine="serial")
        reason = run_one_sharded(spec)
        assert reason is not None
        assert "entries" in reason or "diverge" in reason

    def test_invalid_engine_raises(self):
        spec = sharded_spec_for_run(0, 0, engine="serial")
        bad = replace(spec, engine="gpu")
        with pytest.raises(Exception):
            run_one_sharded(bad)
