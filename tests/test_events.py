"""Tests for events, messages, and phase assembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PhaseOrderError
from repro.events import (
    Event,
    Message,
    PhaseAssembler,
    PhaseInput,
    assemble_phases,
    iter_phase_pairs,
)


class TestEvent:
    def test_fields(self):
        e = Event(1.5, "sensor", 42)
        assert (e.timestamp, e.source, e.value) == (1.5, "sensor", 42)

    def test_frozen(self):
        e = Event(0.0, "a", 1)
        with pytest.raises(AttributeError):
            e.value = 2  # type: ignore[misc]

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError):
            Event(0.0, "", 1)

    def test_non_string_source_rejected(self):
        with pytest.raises(ValueError):
            Event(0.0, 3, 1)  # type: ignore[arg-type]


class TestMessage:
    def test_fields(self):
        m = Message(2, "v", "payload")
        assert (m.phase, m.sender, m.value) == (2, "v", "payload")

    def test_phase_must_be_positive(self):
        with pytest.raises(ValueError):
            Message(0, "v", None)


class TestPhaseInput:
    def test_value_for(self):
        pi = PhaseInput(1, 0.0, {"a": 10})
        assert pi.value_for("a") == 10
        assert pi.value_for("b") is None
        assert pi.value_for("b", default=-1) == -1

    def test_contains(self):
        pi = PhaseInput(1, 0.0, {"a": 10})
        assert "a" in pi
        assert "b" not in pi


class TestPhaseAssembler:
    def test_same_timestamp_one_phase(self):
        phases = assemble_phases(
            [Event(0.0, "a", 1), Event(0.0, "b", 2), Event(1.0, "a", 3)]
        )
        assert len(phases) == 2
        assert phases[0].values == {"a": 1, "b": 2}
        assert phases[1].values == {"a": 3}

    def test_sequential_numbering_from_one(self):
        phases = assemble_phases(
            [Event(t, "a", t) for t in (0.5, 2.0, 7.25)]
        )
        assert [p.phase for p in phases] == [1, 2, 3]
        assert [p.timestamp for p in phases] == [0.5, 2.0, 7.25]

    def test_out_of_order_rejected(self):
        pa = PhaseAssembler()
        pa.add(Event(5.0, "a", 1))
        with pytest.raises(PhaseOrderError):
            pa.add(Event(3.0, "a", 2))

    def test_regression_after_flush_rejected(self):
        pa = PhaseAssembler()
        pa.add(Event(1.0, "a", 1))
        pa.add(Event(2.0, "a", 2))  # seals phase 1
        pa.flush()
        with pytest.raises(PhaseOrderError):
            pa.add(Event(1.0, "b", 3))

    def test_flush_keeps_open_phase(self):
        pa = PhaseAssembler()
        pa.add(Event(0.0, "a", 1))
        assert pa.flush() == []  # phase 1 not sealed yet
        pa.add(Event(1.0, "a", 2))
        sealed = pa.flush()
        assert len(sealed) == 1
        assert sealed[0].values == {"a": 1}

    def test_finish_seals_last_phase(self):
        pa = PhaseAssembler()
        pa.add(Event(0.0, "a", 1))
        phases = pa.finish()
        assert len(phases) == 1

    def test_later_same_phase_value_wins(self):
        phases = assemble_phases([Event(0.0, "a", 1), Event(0.0, "a", 9)])
        assert phases[0].values == {"a": 9}

    def test_empty_stream(self):
        assert assemble_phases([]) == []

    def test_next_phase_property(self):
        pa = PhaseAssembler()
        assert pa.next_phase == 1
        pa.add(Event(0.0, "a", 1))
        pa.add(Event(1.0, "a", 2))
        pa.finish()
        assert pa.next_phase == 3

    def test_iter_phase_pairs(self):
        phases = assemble_phases([Event(0.0, "a", 1), Event(3.0, "a", 2)])
        assert list(iter_phase_pairs(phases)) == [(1, 0.0), (2, 3.0)]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.sampled_from(["a", "b", "c"]),
                st.integers(),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_phases_partition_events(self, raw):
        """Sorted events assemble into phases that (a) are numbered 1..K,
        (b) have strictly increasing timestamps, (c) preserve the last
        value per (timestamp, source)."""
        raw.sort(key=lambda t: t[0])
        events = [Event(t, s, v) for t, s, v in raw]
        phases = assemble_phases(events)
        assert [p.phase for p in phases] == list(range(1, len(phases) + 1))
        times = [p.timestamp for p in phases]
        assert times == sorted(set(times))
        expected_last = {}
        for e in events:
            expected_last[(e.timestamp, e.source)] = e.value
        for p in phases:
            for source, value in p.values.items():
                assert expected_last[(p.timestamp, source)] == value
