"""Cross-engine integration matrix.

Every engine (serial oracle, threaded parallel at several thread counts,
simulated SMP in pipelined and barrier modes, dense baseline where
comparable) over every workload family — all results must agree.
"""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.baselines.barrier import (
    barrier_parallel_engine,
    barrier_simulated_engine,
)
from repro.core.invariants import InvariantChecker
from repro.core.serial import SerialExecutor
from repro.models.domains import (
    build_crisis_workload,
    build_epidemic_workload,
    build_intrusion_workload,
    build_laundering_workload,
    build_power_pricing_workload,
)
from repro.runtime.engine import ParallelEngine
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.streams.workloads import (
    fanin_workload,
    fig1_workload,
    grid_workload,
    pipeline_workload,
)

WORKLOADS = [
    pytest.param(lambda: pipeline_workload(depth=6, phases=25), id="pipeline"),
    pytest.param(lambda: fanin_workload(fan=6, phases=25), id="fanin"),
    pytest.param(lambda: grid_workload(3, 3, phases=25, seed=1), id="grid"),
    pytest.param(lambda: fig1_workload(phases=25), id="fig1"),
    pytest.param(
        lambda: build_power_pricing_workload(phases=80), id="power"
    ),
    pytest.param(
        lambda: build_laundering_workload(phases=150, branches=2, anomaly_rate=0.02),
        id="laundering",
    ),
    pytest.param(
        lambda: build_epidemic_workload(phases=70, counties=4), id="epidemic"
    ),
    pytest.param(
        lambda: build_intrusion_workload(phases=150), id="intrusion"
    ),
    pytest.param(
        lambda: build_crisis_workload(phases=80, regions=2), id="crisis"
    ),
]


@pytest.mark.parametrize("builder", WORKLOADS)
class TestEngineMatrix:
    def test_threaded_engines_match_serial(self, builder):
        prog, phases = builder()
        serial = SerialExecutor(prog).run(phases)
        for threads in (1, 2, 4):
            par = ParallelEngine(prog, num_threads=threads).run(phases)
            assert_serializable(serial, par)

    def test_simulated_engines_match_serial(self, builder):
        prog, phases = builder()
        serial = SerialExecutor(prog).run(phases)
        sim = SimulatedEngine(
            prog,
            num_workers=3,
            num_processors=2,
            cost_model=CostModel(jitter=0.3, seed=11),
        ).run(phases)
        assert_serializable(serial, sim)

    def test_barrier_engines_match_serial(self, builder):
        prog, phases = builder()
        serial = SerialExecutor(prog).run(phases)
        assert_serializable(
            serial, barrier_parallel_engine(prog, num_threads=2).run(phases)
        )
        assert_serializable(
            serial, barrier_simulated_engine(prog, num_workers=2).run(phases)
        )

    def test_invariants_hold_under_threads(self, builder):
        prog, phases = builder()
        checker = InvariantChecker()
        ParallelEngine(prog, num_threads=3, checker=checker).run(phases)
        assert checker.violations == []
        assert checker.checks_run > 0
