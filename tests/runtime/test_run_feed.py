"""Feed-mode execution: incremental admission, retirement, graceful stop.

The continuous-operation contract (satellites of the serve layer):

* **Incremental admission** — phases handed to a running engine through a
  :class:`PhaseFeed` produce results identical to supplying the same
  phases up front, across the engine × frontier × fusion matrix.
* **Retirement** — ``retire=True`` streams each completed phase's records
  through the sink exactly once, in phase order, matching the serial
  oracle, while the engine's per-phase state is released.
* **Graceful stop** — a stop event set mid-stream drains in-flight phases
  and returns a result covering exactly the started prefix.
"""

import threading

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.plan import compile_plan
from repro.core.serial import SerialExecutor
from repro.errors import EngineError
from repro.runtime.engine import ParallelEngine
from repro.runtime.feed import PhaseFeed
from repro.runtime.mp.engine import ProcessEngine
from repro.streams.workloads import comb_workload, pipeline_workload


def _feed_all(phases, capacity=4):
    """A feed plus a producer thread that trickles *phases* in."""
    feed = PhaseFeed(capacity=capacity)

    def producer():
        for pi in phases:
            feed.put(pi)
        feed.close()

    t = threading.Thread(target=producer, daemon=True)
    t.start()
    return feed, t


def _records_from_sink(sink_log):
    recs = {}
    for phase, _ts, entries in sink_log:
        for name, value in entries:
            recs.setdefault(name, []).append((phase, value))
    return recs


WORKLOADS = {
    "pipeline": lambda: pipeline_workload(depth=5, phases=30, seed=3),
    "comb": lambda: comb_workload(lanes=3, depth=3, phases=25, seed=4),
}


class TestIncrementalAdmissionParallel:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("frontier", ["cone", "global"])
    @pytest.mark.parametrize("fuse", [True, False])
    def test_feed_equals_upfront(self, workload, frontier, fuse):
        program, phases = WORKLOADS[workload]()
        plan = compile_plan(program, fuse=fuse)
        serial = SerialExecutor(program).run(phases)

        upfront = ParallelEngine(
            plan, num_threads=2, frontier=frontier
        ).run(phases)
        feed, producer = _feed_all(phases)
        streamed = ParallelEngine(
            plan, num_threads=2, frontier=frontier
        ).run_feed(feed)
        producer.join(timeout=30)

        assert streamed.records == upfront.records
        assert streamed.phases_run == upfront.phases_run
        assert_serializable(serial, streamed)


class TestIncrementalAdmissionProcess:
    @pytest.mark.parametrize(
        "frontier,fuse", [("cone", True), ("cone", False), ("global", True)]
    )
    def test_feed_equals_upfront(self, frontier, fuse):
        program, phases = WORKLOADS["pipeline"]()
        plan = compile_plan(program, fuse=fuse)
        serial = SerialExecutor(program).run(phases)

        feed, producer = _feed_all(phases)
        streamed = ProcessEngine(
            plan, num_workers=2, ipc_batch=2, frontier=frontier
        ).run_feed(feed)
        producer.join(timeout=60)

        assert streamed.phases_run == len(phases)
        assert_serializable(serial, streamed)


class TestRetirement:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("fuse", [True, False])
    def test_parallel_retire_streams_oracle_records(self, workload, fuse):
        program, phases = WORKLOADS[workload]()
        plan = compile_plan(program, fuse=fuse)
        serial = SerialExecutor(program).run(phases)

        sink_log = []
        feed, producer = _feed_all(phases)
        result = ParallelEngine(plan, num_threads=2).run_feed(
            feed,
            sink=lambda p, ts, entries: sink_log.append((p, ts, entries)),
            retire=True,
        )
        producer.join(timeout=30)

        # Every phase retired exactly once, in phase order.
        assert [p for p, _, _ in sink_log] == list(range(1, len(phases) + 1))
        assert result.stats["retirement"]["phases_retired"] == len(phases)
        # Streamed records match the serial oracle; the result itself
        # holds nothing (records were handed off and released).
        assert _records_from_sink(sink_log) == serial.records
        assert result.records == {}
        assert result.phases_run == len(phases)

    def test_process_retire_streams_oracle_records(self):
        program, phases = WORKLOADS["pipeline"]()
        plan = compile_plan(program, fuse=True)
        serial = SerialExecutor(program).run(phases)

        sink_log = []
        feed, producer = _feed_all(phases)
        result = ProcessEngine(plan, num_workers=2, ipc_batch=2).run_feed(
            feed,
            sink=lambda p, ts, entries: sink_log.append((p, ts, entries)),
            retire=True,
        )
        producer.join(timeout=60)

        assert [p for p, _, _ in sink_log] == list(range(1, len(phases) + 1))
        assert _records_from_sink(sink_log) == serial.records
        assert result.stats["retirement"]["phases_retired"] == len(phases)

    def test_retire_timestamps_come_from_phase_inputs(self):
        program, phases = WORKLOADS["pipeline"]()
        sink_log = []
        feed, producer = _feed_all(phases)
        ParallelEngine(program, num_threads=2).run_feed(
            feed,
            sink=lambda p, ts, entries: sink_log.append((p, ts)),
            retire=True,
        )
        producer.join(timeout=30)
        ts_of = {pi.phase: pi.timestamp for pi in phases}
        assert dict(sink_log) == ts_of

    def test_retire_with_tracer_rejected(self):
        program, _ = WORKLOADS["pipeline"]()
        from repro.core.tracer import ExecutionTracer

        engine = ParallelEngine(program, tracer=ExecutionTracer())
        with pytest.raises(EngineError):
            engine.run_feed(PhaseFeed(), retire=True)


class TestGracefulStop:
    @pytest.mark.parametrize("engine_kind", ["parallel", "process"])
    def test_stop_mid_stream_drains_prefix(self, engine_kind):
        program, phases = pipeline_workload(depth=5, phases=60, seed=8)
        stop = threading.Event()
        feed = PhaseFeed(capacity=2)
        released = threading.Event()

        def producer():
            for i, pi in enumerate(phases):
                if i == 10:
                    # Let a prefix through, then signal stop; keep
                    # offering so the engine must *refuse* later phases.
                    stop.set()
                    released.set()
                try:
                    if not feed.put(pi, timeout=0.2):
                        break
                except Exception:
                    break
            feed.close()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        if engine_kind == "parallel":
            result = ParallelEngine(program, num_threads=2).run_feed(
                feed, stop_event=stop
            )
        else:
            result = ProcessEngine(program, num_workers=2).run_feed(
                feed, stop_event=stop
            )
        released.wait(timeout=30)
        t.join(timeout=30)

        assert result.phases_run < len(phases)
        # The drained prefix is serializable against the same prefix.
        serial = SerialExecutor(program).run(phases[: result.phases_run])
        assert_serializable(serial, result)

    def test_stop_before_any_phase(self):
        program, phases = WORKLOADS["pipeline"]()
        stop = threading.Event()
        stop.set()
        feed, producer = _feed_all(phases, capacity=64)
        result = ParallelEngine(program, num_threads=2).run_feed(
            feed, stop_event=stop
        )
        producer.join(timeout=30)
        assert result.phases_run == 0
        assert result.execution_count == 0
