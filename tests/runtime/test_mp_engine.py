"""Tests for the process-parallel backend (:mod:`repro.runtime.mp`)."""

import pickle

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.invariants import InvariantChecker
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.tracer import ExecutionTracer
from repro.core.vertex import Vertex, VertexContext
from repro.errors import EngineError, VertexExecutionError
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph
from repro.runtime.environment import EnvironmentConfig
from repro.runtime.mp import ProcessEngine
from repro.runtime.mp.lifecycle import ProcessWorkerPool, default_start_method
from repro.runtime.mp.protocol import (
    ResultMsg,
    TaskMsg,
    WireStats,
    context_from_task,
    decode,
    encode,
    task_from_context,
)
from repro.streams.workloads import (
    cpu_heavy_workload,
    fanin_workload,
    fig1_workload,
    grid_workload,
    pipeline_workload,
)

from tests.conftest import make_chain_program, signals


class TestProtocol:
    def test_task_frame_round_trip(self):
        ctx = VertexContext(
            name="v3",
            phase=7,
            inputs={"v1": 1.5, "v2": "x"},
            changed={"v1"},
            successors=["v4", "v5"],
            phase_input=("tick", 7),
        )
        task = task_from_context(3, 7, ctx)
        clone = decode(encode(task))
        assert clone == task
        rebuilt = context_from_task(clone)
        assert rebuilt.name == "v3"
        assert rebuilt.phase == 7
        assert rebuilt.inputs == {"v1": 1.5, "v2": "x"}
        assert rebuilt.changed == {"v1"}
        assert list(rebuilt._successors) == ["v4", "v5"]
        assert rebuilt.phase_input == ("tick", 7)

    def test_result_frame_round_trip(self):
        res = ResultMsg(
            worker_id=1, vertex=3, phase=7,
            outputs={"v4": 0.25}, records=(("anomaly", 7),), compute_s=0.01,
        )
        assert decode(encode(res)) == res

    def test_wire_stats_accumulates(self):
        ws = WireStats()
        ws.count("tasks", b"12345")
        ws.count("tasks", b"123")
        ws.count("results", b"12")
        summary = ws.summary()
        assert summary["tasks"] == {"messages": 2, "bytes": 8}
        assert summary["results"] == {"messages": 1, "bytes": 2}
        assert summary["total_bytes"] == 10

    def test_wire_stats_rejects_unknown_class(self):
        with pytest.raises(KeyError):
            WireStats().count("bogus", b"x")


class TestBasicExecution:
    def test_single_phase_single_worker(self):
        prog = make_chain_program(3, {1: "x"})
        res = ProcessEngine(prog, num_workers=1).run(signals(1))
        assert res.records["n2"] == [(1, "x")]
        assert res.engine == "process[w=1]"

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_serial_oracle(self, workers):
        prog, phases = grid_workload(3, 3, phases=15, seed=2)
        serial = SerialExecutor(prog).run(phases)
        par = ProcessEngine(prog, num_workers=workers).run(phases)
        assert_serializable(serial, par)
        assert par.records == serial.records

    @pytest.mark.parametrize("workload", [
        pipeline_workload, fanin_workload, fig1_workload,
    ])
    def test_oracle_equality_across_workloads(self, workload):
        prog, phases = workload(phases=10)
        serial = SerialExecutor(prog).run(phases)
        par = ProcessEngine(prog, num_workers=2).run(phases)
        assert_serializable(serial, par)
        assert par.records == serial.records

    def test_cpu_heavy_oracle_equality(self):
        prog, phases = cpu_heavy_workload(
            width=3, depth=2, phases=4, grain=100
        )
        serial = SerialExecutor(prog).run(phases)
        par = ProcessEngine(prog, num_workers=2).run(phases)
        assert par.records == serial.records

    def test_batched_commits_match_oracle(self):
        prog, phases = grid_workload(3, 3, phases=12, seed=5)
        serial = SerialExecutor(prog).run(phases)
        par = ProcessEngine(prog, num_workers=2, batch_size=4).run(phases)
        assert_serializable(serial, par)
        assert par.engine == "process[w=2,b=4]"
        assert par.stats["batching"]["batch_size"] == 4

    def test_zero_phases(self):
        prog = make_chain_program(2, {})
        res = ProcessEngine(prog, num_workers=2).run([])
        assert res.execution_count == 0
        assert res.phases_run == 0

    def test_invalid_worker_count(self):
        prog = make_chain_program(2, {})
        with pytest.raises(EngineError):
            ProcessEngine(prog, num_workers=0)
        with pytest.raises(EngineError):
            ProcessEngine(prog, num_workers=2, batch_size=0)

    def test_rerun_same_engine_object(self):
        prog = make_chain_program(3, {1: 1, 2: 2})
        engine = ProcessEngine(prog, num_workers=2)
        r1 = engine.run(signals(2))
        r2 = engine.run(signals(2))
        assert r1.records == r2.records

    def test_invariant_checker_clean(self):
        prog, phases = fig1_workload(phases=8)
        checker = InvariantChecker()
        ProcessEngine(prog, num_workers=2, checker=checker).run(phases)
        assert checker.checks_run > 0
        assert checker.violations == []

    def test_flow_control_bound_respected(self):
        prog, phases = grid_workload(3, 3, phases=10, seed=1)
        tracer = ExecutionTracer()
        res = ProcessEngine(
            prog,
            num_workers=2,
            tracer=tracer,
            env=EnvironmentConfig(max_in_flight_phases=2),
        ).run(phases)
        assert res.stats["max_concurrent_phases"] <= 2


class TestFinalStateRestore:
    def test_post_run_state_matches_serial(self):
        from tests.models.test_pickling import normalized

        prog, phases = fig1_workload(phases=10)
        SerialExecutor(prog).run(phases)
        expected = {
            n: normalized(b.snapshot_state())
            for n, b in prog.behaviors.items()
        }
        ProcessEngine(prog, num_workers=3).run(phases)
        actual = {
            n: normalized(b.snapshot_state())
            for n, b in prog.behaviors.items()
        }
        assert actual == expected


class _Boom(Vertex):
    def on_execute(self, ctx):
        if ctx.phase == 2:
            raise ValueError("kaboom")
        return {}


class _Unpicklable(Vertex):
    def __init__(self):
        super().__init__()
        self.fn = lambda x: x  # lambdas don't pickle

    def on_execute(self, ctx):
        return {}


def _one_vertex_program(behavior: Vertex) -> Program:
    g = ComputationGraph("solo")
    g.add_vertex("a")
    return Program(g, {"a": behavior})


class TestFailureHandling:
    def test_vertex_error_reraised_with_pair(self):
        prog = _one_vertex_program(_Boom())
        with pytest.raises(VertexExecutionError) as exc_info:
            ProcessEngine(prog, num_workers=1).run(
                [PhaseInput(p, float(p)) for p in range(1, 4)]
            )
        assert exc_info.value.vertex == "a"
        assert exc_info.value.phase == 2
        assert "kaboom" in str(exc_info.value)

    def test_unpicklable_program_fails_fast(self):
        prog = _one_vertex_program(_Unpicklable())
        with pytest.raises(EngineError, match="not picklable"):
            ProcessEngine(prog, num_workers=1).run([PhaseInput(1, 1.0)])

    def test_engine_reusable_after_vertex_error(self):
        prog = _one_vertex_program(_Boom())
        engine = ProcessEngine(prog, num_workers=1)
        with pytest.raises(VertexExecutionError):
            engine.run([PhaseInput(p, float(p)) for p in range(1, 4)])
        res = engine.run([PhaseInput(1, 1.0)])
        assert res.execution_count == 1


class TestStatsSchema:
    def test_stats_keys_present(self):
        prog, phases = grid_workload(3, 2, phases=6, seed=3)
        # run_length=1 pins the single-pair wire path; the frame-per-pair
        # assertions below are meaningless under run coalescing.
        res = ProcessEngine(prog, num_workers=2, run_length=1).run(phases)
        stats = res.stats
        assert stats["num_workers"] == 2
        assert stats["start_method"] == default_start_method()
        for key in ("acquisitions", "contended_acquisitions",
                    "total_hold_time"):
            assert key in stats["lock"]
        assert sum(stats["per_worker_executions"].values()) == (
            res.execution_count
        )
        assert set(stats["per_worker_utilization"]) == {0, 1}
        assert all(u >= 0.0 for u in stats["per_worker_utilization"].values())
        # One task frame per executed pair.
        assert stats["ipc_round_trips"] == res.execution_count
        wire = stats["serialization_bytes"]
        for cls in ("warmup", "tasks", "results", "final_state"):
            assert wire[cls]["messages"] >= 1
            assert wire[cls]["bytes"] >= 0
        assert wire["total_bytes"] > 0
        assert wire["tasks"]["messages"] == res.execution_count
        batching = stats["batching"]
        assert batching["batch_size"] == 1
        assert batching["mean_batch_size"] == 1.0
        assert stats["edge_entries_peak"] >= stats["edge_entries_final"]

    def test_sticky_assignment_covers_all_workers(self):
        prog, phases = grid_workload(3, 3, phases=8, seed=4)
        res = ProcessEngine(prog, num_workers=3).run(phases)
        # 12 vertices over 3 workers: every worker executes something.
        assert all(
            count > 0
            for count in res.stats["per_worker_executions"].values()
        )


class TestWorkerPool:
    def test_sticky_assignment_round_robin(self):
        prog, _ = grid_workload(2, 2, phases=1, seed=0)
        pool = ProcessWorkerPool(prog, num_workers=3)
        assert [pool.worker_of(v) for v in range(1, 7)] == [
            0, 1, 2, 0, 1, 2,
        ]

    def test_assigned_behaviors_partition_the_program(self):
        prog, _ = grid_workload(2, 2, phases=1, seed=0)
        pool = ProcessWorkerPool(prog, num_workers=2)
        groups = [pool._assigned_behaviors(w) for w in range(2)]
        names = [n for g in groups for n in g]
        assert sorted(names) == sorted(prog.behaviors)
        assert not (set(groups[0]) & set(groups[1]))

    def test_invalid_worker_count(self):
        prog, _ = grid_workload(2, 2, phases=1, seed=0)
        with pytest.raises(EngineError):
            ProcessWorkerPool(prog, num_workers=0)

    def test_shutdown_before_start_is_noop(self):
        prog, _ = grid_workload(2, 2, phases=1, seed=0)
        pool = ProcessWorkerPool(prog, num_workers=2)
        assert pool.shutdown(timeout=1.0) == {}
