"""Tests for the batched wire path of the process backend.

Covers the PR-4 surface: ``TaskBatch``/``ResultBatch`` framing (including
the edge cases — truncated frames, zero-length batches, failures and
crashes mid-batch), the :class:`~repro.runtime.mp.protocol.Interner`,
:func:`~repro.core.state.drain_ready_batches`, delta state sync
(:meth:`~repro.core.vertex.Vertex.snapshot_delta`), the adaptive credit
window, and the byte-metering regression check (per-class wire stats
must sum to the actual coordinator-side queue traffic).
"""

import os
import pickle

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.serial import SerialExecutor
from repro.core.state import drain_ready_batches
from repro.core.program import Program
from repro.core.vertex import Vertex
from repro.errors import EngineError, SchedulerError, VertexExecutionError
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph
from repro.runtime.mp import ProcessEngine
from repro.runtime.mp.lifecycle import ProcessWorkerPool
from repro.runtime.mp.protocol import (
    Interner,
    ResultBatch,
    ResultMsg,
    RunMsg,
    TaskBatch,
    TaskMsg,
    context_from_task,
    decode,
    encode,
    run_from_contexts,
    tasks_from_run,
)
from repro.streams.workloads import grid_workload
from repro.testing import fuzz_process

from tests.conftest import make_chain_program, signals


# ---------------------------------------------------------------------------
# Protocol framing edge cases
# ---------------------------------------------------------------------------


class TestBatchFraming:
    def test_task_batch_round_trip(self):
        tasks = tuple(
            TaskMsg(
                vertex=1, name="a", phase=p, inputs={"x": p},
                changed=("x",), successors=("b",),
            )
            for p in range(1, 4)
        )
        batch = TaskBatch(tasks)
        assert decode(encode(batch)) == batch

    def test_result_batch_round_trip(self):
        batch = ResultBatch(
            worker_id=1,
            results=(
                ResultMsg(worker_id=1, vertex=2, phase=3, outputs={"b": 9}),
                ResultMsg(worker_id=1, vertex=2, phase=4, error="boom"),
            ),
            skipped=((2, 5), (2, 6)),
        )
        assert decode(encode(batch)) == batch

    def test_truncated_frame_raises_not_corrupts(self):
        # Frames are whole pickle blobs: a partial read must fail loudly,
        # never yield a half-parsed message.
        frame = encode(TaskBatch((TaskMsg(
            vertex=1, name="a", phase=1, inputs={},
            changed=(), successors=(),
        ),)))
        for cut in (1, len(frame) // 2, len(frame) - 1):
            with pytest.raises((pickle.UnpicklingError, EOFError,
                                AttributeError, IndexError)):
                decode(frame[:cut])

    def test_zero_length_batch_is_legal_on_wire(self):
        # The engine never sends one, but a zero-length TaskBatch must
        # not wedge or crash a worker: it answers with an empty
        # ResultBatch and keeps serving.
        prog = make_chain_program(2, {1: "x"})
        pool = ProcessWorkerPool(prog, num_workers=1)
        try:
            pool.start()
            pool.submit_to_worker(0, encode(TaskBatch(())), "task_batches")
            msg = pool.collect(timeout=30.0)
            assert msg == ResultBatch(worker_id=0, results=(), skipped=())
            finals = pool.shutdown(timeout=30.0)
            assert 0 in finals
        finally:
            pool.terminate()


class _BoomAtPhase2(Vertex):
    def on_execute(self, ctx):
        if ctx.phase == 2:
            raise ValueError("kaboom")
        return ("ok", ctx.phase)


def _solo_program(behavior: Vertex) -> Program:
    g = ComputationGraph("solo")
    g.add_vertex("a")
    return Program(g, {"a": behavior})


class TestMidBatchFailure:
    def test_worker_reports_survivors_and_skips(self):
        # A batch [a@1, a@2(fails), a@3]: the reply must carry a@1's
        # result, a@2's error entry, and a@3 as skipped — never a@3
        # executed out of order past the failure.
        prog = _solo_program(_BoomAtPhase2())
        pool = ProcessWorkerPool(prog, num_workers=1)
        try:
            pool.start()
            tasks = tuple(
                TaskMsg(vertex=1, name="a", phase=p, inputs={},
                        changed=(), successors=())
                for p in (1, 2, 3)
            )
            pool.submit_to_worker(0, encode(TaskBatch(tasks)), "task_batches")
            msg = pool.collect(timeout=30.0)
            assert isinstance(msg, ResultBatch)
            assert [r.phase for r in msg.results] == [1, 2]
            assert msg.results[0].error is None
            assert msg.results[0].records == (("ok", 1),)
            assert "kaboom" in msg.results[1].error
            assert msg.skipped == ((1, 3),)
        finally:
            pool.terminate()

    def test_engine_surfaces_error_and_stays_reusable(self):
        prog = _solo_program(_BoomAtPhase2())
        engine = ProcessEngine(prog, num_workers=1, ipc_batch=4)
        with pytest.raises(VertexExecutionError) as exc_info:
            engine.run([PhaseInput(p, float(p)) for p in range(1, 5)])
        assert exc_info.value.vertex == "a"
        assert exc_info.value.phase == 2
        res = engine.run([PhaseInput(1, 1.0)])
        assert res.execution_count == 1


class _UnpicklableResult(Vertex):
    def on_execute(self, ctx):
        if ctx.phase == 2:
            return lambda x: x  # poisons the reply frame
        return ("ok", ctx.phase)


class _ExitHard(Vertex):
    def on_execute(self, ctx):
        if ctx.phase == 2:
            os._exit(3)  # simulates a worker death mid-batch
        return ("ok", ctx.phase)


class TestMidBatchCrash:
    def test_unpicklable_result_degrades_to_error(self):
        # The reply frame cannot pickle: the worker salvages it
        # result-by-result, so the coordinator still gets the survivors
        # and a VertexExecutionError for the poison result — not a
        # wedged run or a WorkerCrashMsg.
        prog = _solo_program(_UnpicklableResult())
        engine = ProcessEngine(prog, num_workers=1, ipc_batch=4)
        with pytest.raises(VertexExecutionError, match="not picklable"):
            engine.run([PhaseInput(p, float(p)) for p in range(1, 5)])

    def test_worker_death_mid_batch_is_clean_engine_error(self):
        prog = _solo_program(_ExitHard())
        engine = ProcessEngine(prog, num_workers=1, ipc_batch=4,
                               join_timeout=30.0)
        with pytest.raises(EngineError, match="died|crashed"):
            engine.run([PhaseInput(p, float(p)) for p in range(1, 5)])


class _Poison:
    def __reduce__(self):
        raise TypeError("boom: deliberately unpicklable")


class TestSalvageEncoding:
    """Unit tests of the worker's result-by-result salvage path.

    Regression: the old salvage loop stopped at the first poison result
    and reclassified every *executed* result after it as skipped.  The
    coordinator re-dispatches skipped pairs, so pairs that had already
    run on the worker (warm-cached state already advanced) ran twice.
    """

    @staticmethod
    def _salvage(results, skipped):
        from repro.runtime.mp.worker import _encode_result_batch

        return decode(_encode_result_batch(0, list(results), list(skipped)))

    @staticmethod
    def _ok(vertex, phase, value="ok"):
        return ResultMsg(worker_id=0, vertex=vertex, phase=phase,
                         outputs={"out": value}, compute_s=0.25)

    def test_executed_results_after_poison_still_ship(self):
        poison = ResultMsg(worker_id=0, vertex=2, phase=1,
                           outputs={"out": _Poison()}, compute_s=0.5)
        batch = self._salvage(
            [self._ok(1, 1), poison, self._ok(3, 1)], skipped=[(9, 1)]
        )
        # All three executed results present, in order.
        assert [(r.vertex, r.phase) for r in batch.results] == [
            (1, 1), (2, 1), (3, 1)
        ]
        assert batch.results[0].error is None
        assert batch.results[2].error is None
        # Old code dropped (3, 1) into skipped -> double execution.
        assert batch.skipped == ((9, 1),)
        executed = {(r.vertex, r.phase) for r in batch.results}
        assert executed.isdisjoint(set(batch.skipped))

    def test_poison_error_carries_original_exception(self):
        poison = ResultMsg(worker_id=0, vertex=2, phase=4,
                           outputs={"out": _Poison()}, compute_s=0.5)
        batch = self._salvage([poison], skipped=[])
        (res,) = batch.results
        assert res.error is not None
        assert "result not picklable" in res.error
        assert "TypeError" in res.error
        assert "deliberately unpicklable" in res.error
        # compute_s survives the downgrade: utilization stays honest.
        assert res.compute_s == 0.5

    def test_genuine_error_entries_pass_through(self):
        failed = ResultMsg(worker_id=0, vertex=5, phase=2,
                           error="division by zero", compute_s=0.1)
        poison = ResultMsg(worker_id=0, vertex=6, phase=2,
                           outputs={"out": _Poison()}, compute_s=0.2)
        batch = self._salvage([failed, poison], skipped=[(7, 2)])
        assert batch.results[0].error == "division by zero"
        assert "not picklable" in batch.results[1].error
        assert batch.skipped == ((7, 2),)

    def test_cause_chain_rendered(self):
        from repro.runtime.mp.worker import _describe_pickle_failure

        try:
            try:
                raise ValueError("root cause")
            except ValueError as inner:
                raise TypeError("outer failure") from inner
        except TypeError as exc:
            text = _describe_pickle_failure(exc)
        assert text == "TypeError: outer failure <- ValueError: root cause"

    def test_cycle_in_context_chain_terminates(self):
        from repro.runtime.mp.worker import _describe_pickle_failure

        a = TypeError("a")
        b = ValueError("b")
        a.__cause__ = b
        b.__cause__ = a
        text = _describe_pickle_failure(a)
        assert text == "TypeError: a <- ValueError: b"


# ---------------------------------------------------------------------------
# drain_ready_batches
# ---------------------------------------------------------------------------


class TestDrainReadyBatches:
    def test_routes_by_assignment_and_chunks(self):
        from collections import deque

        pending = deque([(v, 1) for v in range(1, 8)])
        batches, starved = drain_ready_batches(
            pending, lambda v: (v - 1) % 2, lambda w: 99, chunk=2
        )
        assert not pending and not starved
        assert [(w, pairs) for w, pairs in batches] == [
            (0, [(1, 1), (3, 1)]),
            (0, [(5, 1), (7, 1)]),
            (1, [(2, 1), (4, 1)]),
            (1, [(6, 1)]),
        ]

    def test_respects_capacity_and_reports_starvation(self):
        from collections import deque

        pending = deque([(1, p) for p in range(1, 6)])
        batches, starved = drain_ready_batches(
            pending, lambda v: 0, lambda w: 2, chunk=8
        )
        assert batches == [(0, [(1, 1), (1, 2)])]
        assert starved == {0}
        # Leftovers keep their order — the per-worker FIFO the phase
        # ordering argument relies on.
        assert list(pending) == [(1, 3), (1, 4), (1, 5)]

    def test_zero_capacity_takes_nothing(self):
        from collections import deque

        pending = deque([(1, 1)])
        batches, starved = drain_ready_batches(
            pending, lambda v: 0, lambda w: 0, chunk=4
        )
        assert batches == [] and starved == {0}
        assert list(pending) == [(1, 1)]

    def test_invalid_chunk_rejected(self):
        from collections import deque

        with pytest.raises(SchedulerError):
            drain_ready_batches(deque(), lambda v: 0, lambda w: 1, chunk=0)


# ---------------------------------------------------------------------------
# Interner
# ---------------------------------------------------------------------------


class TestInterner:
    def test_equal_values_collapse_to_one_object(self):
        interner = Interner()
        a = interner.intern(1000 + 24)
        b = interner.intern(1000 + 24)
        assert a is b
        assert interner.hits == 1 and interner.misses == 1

    def test_type_distinguishes_keys(self):
        interner = Interner()
        assert interner.intern(1) is not interner.intern(1.0)
        assert interner.misses == 2

    def test_unhashable_passes_through(self):
        interner = Interner()
        value = [1, 2, 3]
        assert interner.intern(value) is value
        assert interner.summary()["entries"] == 0

    def test_table_bounded(self):
        interner = Interner(max_entries=4)
        for i in range(10):
            interner.intern(f"v{i}")
        assert len(interner._table) <= 4

    def test_interned_batch_frame_is_smaller(self):
        def fresh_payload():
            # Equal but distinct objects each call — what latched inputs
            # across separately prepared contexts look like.
            return "".join(["a repeated latched value"] * 4)

        tasks_plain = []
        tasks_interned = []
        interner = Interner()
        for p in range(1, 9):
            tasks_plain.append(TaskMsg(
                vertex=1, name="a", phase=p,
                inputs={"x": fresh_payload()}, changed=(), successors=("b",),
            ))
            tasks_interned.append(TaskMsg(
                vertex=1, name="a", phase=p,
                inputs={"x": interner.intern(fresh_payload())},
                changed=(), successors=("b",),
            ))
        plain = encode(TaskBatch(tuple(tasks_plain)))
        interned = encode(TaskBatch(tuple(tasks_interned)))
        assert len(interned) < len(plain)

    def test_byte_meter_tracks_retained_values(self):
        import sys

        interner = Interner()
        values = [f"payload-{i}" * 10 for i in range(8)]
        for v in values:
            interner.intern(v)
        assert interner.approx_bytes == sum(sys.getsizeof(v) for v in values)
        # Hits retain nothing new.
        interner.intern(values[0] + "")
        assert interner.approx_bytes == sum(sys.getsizeof(v) for v in values)

    def test_byte_cap_resets_on_overflow(self):
        # The regression this guards: before the byte bound, a serve-style
        # run interning a stream of large distinct values grew the memo
        # without limit even though the entry count stayed under its cap.
        interner = Interner(max_entries=1 << 30, max_bytes=4096)
        big = "x" * 512
        for i in range(64):
            interner.intern(big + str(i))
        assert interner.resets >= 1
        # Retained bytes never exceed cap + one value's worth of slack.
        import sys

        assert interner.approx_bytes <= 4096 + sys.getsizeof(big + "00")
        summary = interner.summary()
        assert summary["resets"] == interner.resets
        assert summary["approx_bytes"] == interner.approx_bytes

    def test_entry_cap_reset_is_counted(self):
        interner = Interner(max_entries=4)
        for i in range(10):
            interner.intern(f"v{i}")
        assert interner.resets >= 1
        assert len(interner._table) <= 4

    def test_reset_only_costs_re_misses(self):
        # Correctness: a value interned, evicted by a reset, and interned
        # again still comes back equal (identity is an optimisation only).
        interner = Interner(max_entries=2)
        first = interner.intern("alpha")
        interner.intern("beta")
        interner.intern("gamma")  # forces a reset
        second = interner.intern("alpha")
        assert second == first


# ---------------------------------------------------------------------------
# Coalesced run frames
# ---------------------------------------------------------------------------


def _prepared_members(phases, payload="latched"):
    """Ascending (phase, ctx) members the way the coordinator prepares
    them for one claimed run."""
    prepared = []
    for p in phases:
        task = TaskMsg(
            vertex=3, name="mid", phase=p,
            inputs={"up": payload}, changed=("up",),
            successors=("down", "side"), phase_input=None,
        )
        prepared.append((p, context_from_task(task)))
    return prepared


class TestRunFraming:
    def test_round_trip_expands_in_phase_order(self):
        run = run_from_contexts(3, _prepared_members([4, 5, 6]))
        decoded = decode(encode(run))
        tasks = tasks_from_run(decoded)
        assert [t.phase for t in tasks] == [4, 5, 6]
        for t in tasks:
            assert t.vertex == 3
            assert t.name == "mid"
            assert t.successors == ("down", "side")
            assert t.inputs == {"up": "latched"}
            assert t.changed == ("up",)

    def test_header_rides_once(self):
        # A run frame carries name/successors once; the equivalent batch
        # of single-pair tasks repeats them per member.
        prepared = _prepared_members(range(1, 9), payload="v" * 64)
        run_frame = encode(run_from_contexts(3, prepared, Interner()))
        singles = encode(TaskBatch(tuple(
            TaskMsg(
                vertex=3, name="mid", phase=p,
                inputs=dict(ctx.inputs), changed=tuple(sorted(ctx.changed)),
                successors=tuple(ctx._successors),
            )
            for p, ctx in prepared
        )))
        assert len(run_frame) < len(singles)

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            run_from_contexts(3, [])

    def test_runs_nest_inside_task_batches(self):
        run = run_from_contexts(3, _prepared_members([2, 3]))
        lone = TaskMsg(
            vertex=5, name="tail", phase=2, inputs={}, changed=(),
            successors=(),
        )
        batch = decode(encode(TaskBatch((run, lone))))
        kinds = [type(e) for e in batch.tasks]
        assert kinds == [RunMsg, TaskMsg]


# ---------------------------------------------------------------------------
# Delta state sync
# ---------------------------------------------------------------------------


class _WeirdEq:
    """Equality that raises — the conservative diff must ship it."""

    def __eq__(self, other):
        raise RuntimeError("ambiguous")

    def __hash__(self):  # pragma: no cover - never hashed
        return 0


class _CustomSnapshot(Vertex):
    def __init__(self):
        self.total = 0

    def snapshot_state(self):
        return {"total": self.total}

    def restore_state(self, snapshot):
        self.total = snapshot["total"]

    def on_execute(self, ctx):  # pragma: no cover - not executed
        return None


class TestSnapshotDelta:
    def test_dict_diff_ships_only_changes(self):
        class Counter(Vertex):
            def __init__(self):
                self.config = ("fixed", "tuple")
                self.count = 0

            def on_execute(self, ctx):  # pragma: no cover
                return None

        v = Counter()
        baseline = v.snapshot_state()
        v.count = 7
        kind, changed, removed = v.snapshot_delta(baseline)
        assert kind == "dict"
        assert changed == {"count": 7}
        assert removed == ()

    def test_apply_delta_round_trips(self):
        class Counter(Vertex):
            def __init__(self):
                self.count = 0
                self.gone = "soon"

            def on_execute(self, ctx):  # pragma: no cover
                return None

        worker_side = Counter()
        coordinator_side = Counter()
        baseline = worker_side.snapshot_state()
        worker_side.count = 3
        del worker_side.gone
        worker_side.new = "appeared"
        coordinator_side.apply_delta(worker_side.snapshot_delta(baseline))
        assert coordinator_side.snapshot_state() == (
            worker_side.snapshot_state()
        )

    def test_unreliable_equality_is_shipped(self):
        class Holder(Vertex):
            def __init__(self):
                self.weird = _WeirdEq()

            def on_execute(self, ctx):  # pragma: no cover
                return None

        v = Holder()
        baseline = v.snapshot_state()
        kind, changed, _removed = v.snapshot_delta(baseline)
        assert kind == "dict"
        assert "weird" in changed  # conservatively treated as changed

    def test_custom_snapshot_falls_back_to_full(self):
        v = _CustomSnapshot()
        baseline = v.snapshot_state()
        v.total = 5
        delta = v.snapshot_delta(baseline)
        assert delta == ("full", {"total": 5})
        peer = _CustomSnapshot()
        peer.apply_delta(delta)
        assert peer.total == 5

    def test_unknown_delta_kind_rejected(self):
        with pytest.raises(VertexExecutionError):
            _CustomSnapshot().apply_delta(("nonsense", {}))


# ---------------------------------------------------------------------------
# The batched engine end to end
# ---------------------------------------------------------------------------


class TestBatchedEngine:
    @pytest.mark.parametrize("ipc_batch,window", [
        (2, None), (8, None), (8, 4), (4, 1), (3, 2),
    ])
    def test_matches_serial_oracle(self, ipc_batch, window):
        prog, phases = grid_workload(3, 3, phases=12, seed=6)
        serial = SerialExecutor(prog).run(phases)
        par = ProcessEngine(
            prog, num_workers=2, batch_size=4,
            ipc_batch=ipc_batch, window=window,
        ).run(phases)
        assert_serializable(serial, par)
        assert par.records == serial.records

    def test_round_trips_scale_with_batches_not_executions(self):
        prog, phases = grid_workload(4, 2, phases=10, seed=1)
        res = ProcessEngine(
            prog, num_workers=2, batch_size=4, ipc_batch=4
        ).run(phases)
        assert res.stats["ipc_round_trips"] < res.execution_count
        wire = res.stats["serialization_bytes"]
        assert wire["task_batches"]["messages"] == (
            res.stats["ipc_round_trips"]
        )
        assert wire["tasks"]["messages"] == 0
        assert wire["result_batches"]["messages"] >= 1
        assert res.stats["ipc"]["mean_tasks_per_frame"] > 1.0

    def test_label_and_ipc_stats_schema(self):
        prog, phases = grid_workload(3, 2, phases=6, seed=3)
        res = ProcessEngine(
            prog, num_workers=2, batch_size=4, ipc_batch=8, window=4
        ).run(phases)
        assert res.engine == "process[w=2,b=4,ipc=8,win=4]"
        ipc = res.stats["ipc"]
        assert ipc["ipc_batch"] == 8
        assert ipc["window"] == 4
        assert set(ipc["window_final"]) == {0, 1}
        assert ipc["task_frames"] == res.stats["ipc_round_trips"]
        assert ipc["interning"]["misses"] >= 0

    def test_default_path_is_unchanged(self):
        # ipc_batch=1 + run_length=1 must reproduce the PR-3 wire path:
        # one TaskMsg frame per executed pair, no batch frames, no
        # interning (run_length=1 disables run coalescing, which would
        # otherwise ship RunMsg frames under the default cone frontier).
        prog, phases = grid_workload(3, 2, phases=6, seed=3)
        res = ProcessEngine(prog, num_workers=2, run_length=1).run(phases)
        assert res.engine == "process[w=2]"
        wire = res.stats["serialization_bytes"]
        assert wire["tasks"]["messages"] == res.execution_count
        assert wire["task_batches"]["messages"] == 0
        assert wire["result_batches"]["messages"] == 0
        assert res.stats["ipc"]["window"] == "adaptive"
        assert res.stats["ipc"]["interning"] is None

    def test_adaptive_window_widens_under_backlog(self):
        # run_length=1: coalescing folds the backlog into runs before the
        # window controller ever sees pressure, so widening is a
        # single-pair-dispatch behaviour.
        prog, phases = grid_workload(4, 3, phases=20, seed=2)
        res = ProcessEngine(
            prog, num_workers=2, batch_size=4, ipc_batch=2, run_length=1
        ).run(phases)
        ipc = res.stats["ipc"]
        assert ipc["window"] == "adaptive"
        assert ipc["window_peak"] >= 2
        assert ipc["window_widenings"] >= 1

    def test_invalid_knobs_rejected(self):
        prog = make_chain_program(2, {})
        with pytest.raises(EngineError):
            ProcessEngine(prog, ipc_batch=0)
        with pytest.raises(EngineError):
            ProcessEngine(prog, window=0)

    def test_post_run_state_matches_serial_via_deltas(self):
        # Sources mutate worker-side state (RNG advance); after the run
        # the coordinator's program must hold it, shipped as deltas.
        from tests.models.test_pickling import normalized

        prog, phases = grid_workload(3, 3, phases=10, seed=9)
        SerialExecutor(prog).run(phases)
        expected = {
            n: normalized(b.snapshot_state())
            for n, b in prog.behaviors.items()
        }
        ProcessEngine(prog, num_workers=2, ipc_batch=4).run(phases)
        actual = {
            n: normalized(b.snapshot_state())
            for n, b in prog.behaviors.items()
        }
        assert actual == expected


# ---------------------------------------------------------------------------
# Byte-metering regression: per-class sums == actual queue traffic
# ---------------------------------------------------------------------------


class _MeteredQueue:
    """Wraps a multiprocessing queue, recording coordinator-side frame
    sizes (the workers hold references to the real queue)."""

    def __init__(self, inner, ledger):
        self._inner = inner
        self._ledger = ledger

    def put(self, frame):
        self._ledger.append(len(frame))
        self._inner.put(frame)

    def get(self, *args, **kwargs):
        frame = self._inner.get(*args, **kwargs)
        self._ledger.append(len(frame))
        return frame

    def get_nowait(self):
        frame = self._inner.get_nowait()
        self._ledger.append(len(frame))
        return frame

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestMeteringRegression:
    @pytest.mark.parametrize("ipc_batch", [1, 4])
    def test_per_class_bytes_sum_to_pipe_traffic(self, monkeypatch,
                                                 ipc_batch):
        # Independently meter every byte the coordinator moves through
        # the queues, then require the engine's per-class accounting to
        # sum to exactly that (plus the warmup blobs, which travel via
        # process spawn, not a queue).
        sent, received = [], []
        original_start = ProcessWorkerPool.start

        def recording_start(self):
            original_start(self)
            self.result_queue = _MeteredQueue(self.result_queue, received)
            self._task_queues = [
                _MeteredQueue(q, sent) for q in self._task_queues
            ]

        monkeypatch.setattr(ProcessWorkerPool, "start", recording_start)
        prog, phases = grid_workload(3, 3, phases=8, seed=4)
        res = ProcessEngine(
            prog, num_workers=2, batch_size=4, ipc_batch=ipc_batch
        ).run(phases)
        wire = res.stats["serialization_bytes"]
        sent_classes = ("tasks", "runs", "task_batches", "shutdown")
        recv_classes = ("results", "result_batches", "final_state")
        assert sum(wire[c]["bytes"] for c in sent_classes) == sum(sent)
        assert sum(wire[c]["bytes"] for c in recv_classes) == sum(received)
        assert sum(wire[c]["messages"] for c in sent_classes) == len(sent)
        assert sum(wire[c]["messages"] for c in recv_classes) == (
            len(received)
        )
        # And the grand total is queue traffic plus the warmup blobs.
        assert wire["total_bytes"] == (
            sum(sent) + sum(received) + wire["warmup"]["bytes"]
        )
        assert wire["final_state"]["messages"] == 2  # one per worker
        assert wire["shutdown"]["messages"] == 2


# ---------------------------------------------------------------------------
# The process fuzz campaign
# ---------------------------------------------------------------------------


class TestProcessFuzzCampaign:
    def test_small_campaign_is_clean(self):
        report = fuzz_process(
            runs=3, seed=7, max_vertices=5, max_phases=4,
            start_method="fork",
        )
        assert report.ok, report.summary()
        assert report.runs == 3
        assert report.total_steps > 0

    def test_campaign_configs_are_deterministic(self):
        from repro.testing import process_config_for_run

        assert process_config_for_run(7, 0) == process_config_for_run(7, 0)
        configs = [process_config_for_run(7, i) for i in range(12)]
        assert len({tuple(sorted(c.items(), key=str)) for c in configs}) > 1
