"""Tests for the instrumented global lock."""

import threading
import time

from repro.runtime.locks import InstrumentedLock


class TestBasics:
    def test_context_manager(self):
        lock = InstrumentedLock()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_acquisition_counting(self):
        lock = InstrumentedLock()
        for _ in range(3):
            with lock:
                pass
        stats = lock.stats()
        assert stats["acquisitions"] == 3
        assert stats["contended_acquisitions"] == 0
        assert stats["contention_ratio"] == 0.0

    def test_hold_time_accumulates(self):
        lock = InstrumentedLock()
        with lock:
            time.sleep(0.02)
        assert lock.stats()["total_hold_time"] >= 0.015

    def test_repr(self):
        lock = InstrumentedLock()
        with lock:
            pass
        assert "acquisitions=1" in repr(lock)

    def test_new_condition_is_bound(self):
        lock = InstrumentedLock()
        cond = lock.new_condition()
        with cond:
            pass  # acquires/releases the underlying lock without error


class TestContention:
    def test_contended_acquisition_detected(self):
        lock = InstrumentedLock()
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                entered.set()
                release.wait(timeout=5)

        t = threading.Thread(target=holder)
        t.start()
        entered.wait(timeout=5)
        waiter_done = threading.Event()

        def waiter():
            with lock:
                waiter_done.set()

        t2 = threading.Thread(target=waiter)
        t2.start()
        time.sleep(0.02)
        release.set()
        t.join(timeout=5)
        t2.join(timeout=5)
        assert waiter_done.is_set()
        stats = lock.stats()
        assert stats["acquisitions"] == 2
        assert stats["contended_acquisitions"] == 1
        assert stats["total_wait_time"] > 0.0
        assert 0.0 < stats["contention_ratio"] <= 0.5

    def test_mutual_exclusion(self):
        """Concurrent increments under the lock never lose updates."""
        lock = InstrumentedLock()
        counter = {"n": 0}

        def bump():
            for _ in range(2000):
                with lock:
                    counter["n"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert counter["n"] == 8000
