"""Tests for the instrumented global lock.

Timing statistics are asserted against an injected fake clock (each call
advances it by exactly one tick), so the tests are deterministic: no
sleeps, no wall-clock thresholds, no flakiness on loaded machines.
"""

import threading

from repro.runtime.locks import InstrumentedLock


class TickClock:
    """A clock returning 0.0, 1.0, 2.0, ... — one tick per reading."""

    def __init__(self):
        self._now = -1.0
        self._guard = threading.Lock()

    def __call__(self):
        with self._guard:
            self._now += 1.0
            return self._now


class TestBasics:
    def test_context_manager(self):
        lock = InstrumentedLock()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_acquisition_counting(self):
        lock = InstrumentedLock()
        for _ in range(3):
            with lock:
                pass
        stats = lock.stats()
        assert stats["acquisitions"] == 3
        assert stats["contended_acquisitions"] == 0
        assert stats["contention_ratio"] == 0.0

    def test_hold_time_accumulates(self):
        # Uncontended acquire reads the clock at acquire and at release:
        # exactly one tick apart under the fake clock.
        lock = InstrumentedLock(clock=TickClock())
        with lock:
            pass
        assert lock.stats()["total_hold_time"] == 1.0
        with lock:
            pass
        assert lock.stats()["total_hold_time"] == 2.0

    def test_repr(self):
        lock = InstrumentedLock()
        with lock:
            pass
        assert "acquisitions=1" in repr(lock)

    def test_new_condition_is_bound(self):
        lock = InstrumentedLock()
        cond = lock.new_condition()
        with cond:
            pass  # acquires/releases the underlying lock without error


class TestContention:
    def test_contended_acquisition_detected(self):
        # Deterministic contention: under the virtual scheduler the waiter
        # is *guaranteed* to attempt acquisition while the holder still
        # owns the lock, so the contended path runs on every execution.
        from repro.testing.schedule import (
            RoundRobinPolicy,
            VirtualBackend,
            VirtualScheduler,
        )

        sched = VirtualScheduler(policy=RoundRobinPolicy())
        backend = VirtualBackend(sched)
        lock = InstrumentedLock(clock=TickClock(), backend=backend)
        gate = backend.event()
        waiter_done = []

        def holder():
            with lock:
                gate.set()
                # Spin at yield points long enough for the round-robin
                # schedule to run the waiter into the contended acquire
                # while the lock is still held.
                for _ in range(10):
                    sched.switch("holding")

        def waiter():
            gate.wait()
            with lock:
                waiter_done.append(True)

        backend.thread(target=holder, name="holder").start()
        backend.thread(target=waiter, name="waiter").start()
        sched.run_all()
        assert waiter_done == [True]
        stats = lock.stats()
        assert stats["acquisitions"] == 2
        assert stats["contended_acquisitions"] == 1
        # The fake clock ticks once per reading, so the contended acquire
        # measured a strictly positive wait — deterministically.
        assert stats["total_wait_time"] > 0.0
        assert stats["contention_ratio"] == 0.5

    def test_mutual_exclusion(self):
        """Concurrent increments under the lock never lose updates."""
        lock = InstrumentedLock()
        counter = {"n": 0}

        def bump():
            for _ in range(2000):
                with lock:
                    counter["n"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert counter["n"] == 8000
