"""PhaseFeed: the bounded blocking handoff between ingest and engine."""

import threading
import time

import pytest

from repro.errors import ServeError
from repro.events import PhaseInput
from repro.runtime.feed import PhaseFeed


def _pi(p, ts=None):
    return PhaseInput(p, float(p) if ts is None else ts, {})


class TestBasics:
    def test_fifo_order(self):
        feed = PhaseFeed(capacity=8)
        for p in (1, 2, 3):
            assert feed.put(_pi(p))
        assert [feed.get(timeout=0).phase for _ in range(3)] == [1, 2, 3]

    def test_phases_must_be_sequential(self):
        feed = PhaseFeed()
        feed.put(_pi(1))
        with pytest.raises(ServeError):
            feed.put(_pi(3))

    def test_nonblocking_get_on_empty(self):
        feed = PhaseFeed()
        assert feed.get(timeout=0) is None

    def test_depth_and_drained(self):
        feed = PhaseFeed()
        feed.put(_pi(1))
        assert feed.depth == 1
        assert not feed.drained
        feed.close()
        assert not feed.drained  # still one item queued
        assert feed.get(timeout=0).phase == 1
        assert feed.drained

    def test_invalid_capacity(self):
        with pytest.raises(ServeError):
            PhaseFeed(capacity=0)


class TestCapacity:
    def test_put_blocks_at_capacity_and_counts_stall(self):
        feed = PhaseFeed(capacity=2)
        feed.put(_pi(1))
        feed.put(_pi(2))
        assert feed.put(_pi(3), timeout=0.05) is False  # full: timed out
        assert feed.put_stalls >= 1
        assert feed.get(timeout=0).phase == 1
        assert feed.put(_pi(3), timeout=1.0) is True  # space freed

    def test_high_water_tracks_peak(self):
        feed = PhaseFeed(capacity=4)
        for p in (1, 2, 3):
            feed.put(_pi(p))
        feed.get(timeout=0)
        assert feed.high_water == 3

    def test_blocked_put_wakes_on_get(self):
        feed = PhaseFeed(capacity=1)
        feed.put(_pi(1))
        done = []

        def producer():
            feed.put(_pi(2), timeout=5.0)
            done.append(True)

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.05)
        assert not done
        assert feed.get(timeout=1.0).phase == 1
        t.join(timeout=5.0)
        assert done


class TestClose:
    def test_get_returns_none_after_close_and_drain(self):
        feed = PhaseFeed()
        feed.put(_pi(1))
        feed.close()
        assert feed.get(timeout=0).phase == 1
        assert feed.get(timeout=0) is None
        assert feed.get() is None  # closed + drained: no blocking

    def test_put_after_close_rejected(self):
        feed = PhaseFeed()
        feed.close()
        with pytest.raises(ServeError):
            feed.put(_pi(1))

    def test_close_is_idempotent(self):
        feed = PhaseFeed()
        feed.close()
        feed.close()
        assert feed.closed

    def test_close_wakes_blocked_producer(self):
        feed = PhaseFeed(capacity=1)
        feed.put(_pi(1))
        errors = []

        def producer():
            try:
                feed.put(_pi(2), timeout=5.0)
            except ServeError as exc:
                errors.append(exc)

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.05)
        feed.close()
        t.join(timeout=5.0)
        assert errors  # closing while a producer waits raises to it

    def test_close_wakes_blocked_consumer(self):
        feed = PhaseFeed()
        out = []

        def consumer():
            out.append(feed.get(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.05)
        feed.close()
        t.join(timeout=5.0)
        assert out == [None]
