"""Tests for the run queue, including concurrent at-most-once delivery."""

import threading
import time

import pytest

from repro.errors import QueueClosedError
from repro.runtime.blocking_queue import BlockingQueue


class TestBasics:
    def test_fifo_order(self):
        q = BlockingQueue()
        for i in range(5):
            q.put(i)
        assert [q.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_put_many(self):
        q = BlockingQueue()
        q.put_many([1, 2, 3])
        assert len(q) == 3
        assert q.get() == 1

    def test_put_many_empty_is_noop(self):
        q = BlockingQueue()
        q.put_many([])
        assert len(q) == 0

    def test_get_timeout(self):
        q = BlockingQueue()
        with pytest.raises(TimeoutError):
            q.get(timeout=0.01)

    def test_len_and_depth_stats(self):
        q = BlockingQueue()
        q.put(1)
        q.put(2)
        q.get()
        q.put(3)
        assert q.max_depth == 2
        assert q.total_enqueued == 3
        assert q.total_dequeued == 1

    def test_repr(self):
        q = BlockingQueue()
        q.put(1)
        assert "depth=1" in repr(q)


class TestClose:
    def test_close_then_drain(self):
        q = BlockingQueue()
        q.put("item")
        q.close()
        assert q.get() == "item"  # already-enqueued items still delivered
        with pytest.raises(QueueClosedError):
            q.get()

    def test_put_after_close_rejected(self):
        q = BlockingQueue()
        q.close()
        with pytest.raises(QueueClosedError):
            q.put(1)
        with pytest.raises(QueueClosedError):
            q.put_many([1])

    def test_close_idempotent(self):
        q = BlockingQueue()
        q.close()
        q.close()
        assert q.closed

    def test_close_wakes_blocked_getters(self):
        q = BlockingQueue()
        results = []

        def getter():
            try:
                q.get()
            except QueueClosedError:
                results.append("closed")

        threads = [threading.Thread(target=getter) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        q.close()
        for t in threads:
            t.join(timeout=2)
        assert results == ["closed"] * 3


class TestConcurrency:
    def test_blocking_get_receives_later_put(self):
        q = BlockingQueue()
        result = []

        def getter():
            result.append(q.get())

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.02)
        q.put("late")
        t.join(timeout=2)
        assert result == ["late"]

    def test_at_most_once_under_contention(self):
        """N items, many consumers: every item delivered exactly once."""
        q = BlockingQueue()
        n_items, n_consumers = 2000, 8
        received = [[] for _ in range(n_consumers)]

        def consumer(idx: int) -> None:
            while True:
                try:
                    received[idx].append(q.get())
                except QueueClosedError:
                    return

        threads = [
            threading.Thread(target=consumer, args=(i,)) for i in range(n_consumers)
        ]
        for t in threads:
            t.start()
        for i in range(n_items):
            q.put(i)
        # Give consumers time to drain, then close.
        while q.total_dequeued < n_items:
            time.sleep(0.005)
        q.close()
        for t in threads:
            t.join(timeout=5)
        everything = [x for part in received for x in part]
        assert sorted(everything) == list(range(n_items))
        assert len(everything) == n_items  # no duplicates

    def test_concurrent_producers(self):
        q = BlockingQueue()
        n_producers, per_producer = 4, 500

        def producer(base: int) -> None:
            for i in range(per_producer):
                q.put(base + i)

        threads = [
            threading.Thread(target=producer, args=(i * per_producer,))
            for i in range(n_producers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        drained = [q.get() for _ in range(n_producers * per_producer)]
        assert sorted(drained) == list(range(n_producers * per_producer))


class TestCloseEdgeCases:
    """Close-protocol corners: closing under blocked getters/putters, the
    timeout/close race, and the virtual-backend equivalents."""

    def test_close_while_getter_blocked_with_timeout(self):
        # A getter blocked *with a timeout* must still wake with
        # QueueClosedError (not TimeoutError) when close wins the race.
        q = BlockingQueue()
        outcome = []

        def getter():
            try:
                q.get(timeout=30.0)
            except QueueClosedError:
                outcome.append("closed")
            except TimeoutError:
                outcome.append("timeout")

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2)
        assert outcome == ["closed"]

    def test_put_many_after_close_delivers_nothing(self):
        q = BlockingQueue()
        q.put(1)
        q.close()
        with pytest.raises(QueueClosedError):
            q.put_many([2, 3])
        assert q.get() == 1
        with pytest.raises(QueueClosedError):
            q.get()
        assert q.total_enqueued == 1  # the rejected batch left no trace

    def test_close_empty_queue_immediately_raises_on_get(self):
        q = BlockingQueue()
        q.close()
        with pytest.raises(QueueClosedError):
            q.get()
        with pytest.raises(QueueClosedError):
            q.get(timeout=0.01)

    def test_stats_frozen_after_close(self):
        q = BlockingQueue()
        q.put_many([1, 2])
        q.get()
        q.close()
        q.get()  # drain the survivor
        assert q.total_enqueued == 2
        assert q.total_dequeued == 2
        assert q.closed

    def test_close_under_virtual_backend_wakes_blocked_getters(self):
        # The same close-while-blocked protocol, but deterministically
        # scheduled: the getters park on the virtual condition and close
        # must wake every one of them.
        from repro.testing.schedule import (
            RandomPolicy,
            VirtualBackend,
            VirtualScheduler,
        )

        sched = VirtualScheduler(policy=RandomPolicy(2))
        backend = VirtualBackend(sched)
        q = BlockingQueue(backend=backend)
        outcome = []

        def getter(me):
            try:
                q.get()
            except QueueClosedError:
                outcome.append(me)

        def closer():
            sched.switch("pre-close")
            q.close()

        for i in range(3):
            backend.thread(target=getter, args=(i,), name=f"g{i}").start()
        backend.thread(target=closer, name="closer").start()
        sched.run_all()
        assert sorted(outcome) == [0, 1, 2]


class TestZeroMessageLastPhase:
    """Workers must terminate when the *last* phase produces no messages
    at all — the close protocol cannot rely on a final completion event
    coming from a worker."""

    def _silent_tail_program(self):
        from repro.core.program import Program
        from repro.core.vertex import EMIT_NOTHING, FunctionVertex
        from repro.graph.generators import chain_graph

        # Source emits only in phase 1; phases 2..4 are entirely empty of
        # messages, so no worker commit marks them complete after start.
        def source(ctx):
            return 7 if ctx.phase == 1 else EMIT_NOTHING

        g = chain_graph(3)
        prog = Program(
            g,
            {
                "v1": FunctionVertex(source),
                "v2": FunctionVertex(lambda ctx: ctx.input("v1")),
                "v3": FunctionVertex(lambda ctx: ctx.input("v2")),
            },
        )
        return prog

    def test_engine_exits_when_last_phases_are_silent(self):
        from repro.runtime.engine import ParallelEngine
        from repro.streams.generators import phase_signals

        prog = self._silent_tail_program()
        result = ParallelEngine(prog, num_threads=3).run(phase_signals(4))
        assert result.phases_run == 4
        assert result.records["v3"] == [(1, 7)]

    def test_virtual_engine_exits_when_last_phases_are_silent(self):
        # Same scenario under exhaustive-ish deterministic schedules: a
        # close-protocol hole here would surface as DeadlockError.
        from repro.runtime.engine import ParallelEngine
        from repro.streams.generators import phase_signals
        from repro.testing.schedule import (
            RandomPolicy,
            VirtualBackend,
            VirtualScheduler,
        )

        for seed in range(5):
            sched = VirtualScheduler(policy=RandomPolicy(seed))
            prog = self._silent_tail_program()
            engine = ParallelEngine(
                prog, num_threads=2, backend=VirtualBackend(sched)
            )
            try:
                result = engine.run(phase_signals(3))
            finally:
                sched.shutdown()
            assert result.phases_run == 3


class TestGetMany:
    """Bounded batch dequeue — the batched commit path's entry point."""

    def test_drains_up_to_max_items_in_order(self):
        q = BlockingQueue()
        q.put_many([0, 1, 2, 3, 4])
        assert q.get_many(3) == [0, 1, 2]
        assert q.get_many(10) == [3, 4]  # bounded by what's available

    def test_single_item_batch_matches_get(self):
        q = BlockingQueue()
        q.put_many(["a", "b"])
        assert q.get_many(1) == ["a"]
        assert q.get() == "b"

    def test_invalid_max_items_rejected(self):
        q = BlockingQueue()
        with pytest.raises(ValueError):
            q.get_many(0)
        with pytest.raises(ValueError):
            q.get_many(-1)

    def test_timeout_when_empty(self):
        q = BlockingQueue()
        with pytest.raises(TimeoutError):
            q.get_many(4, timeout=0.01)

    def test_blocks_until_put_then_takes_what_arrived(self):
        q = BlockingQueue()
        got = []

        def getter():
            got.extend(q.get_many(8))

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        q.put_many([1, 2])
        t.join(timeout=2)
        # A woken getter takes what's there — it never waits to fill the
        # batch, or a quiescent run would deadlock on a partial batch.
        assert got == [1, 2]

    def test_close_then_drain_in_batches(self):
        q = BlockingQueue()
        q.put_many([1, 2, 3])
        q.close()
        assert q.get_many(2) == [1, 2]  # leftovers still delivered
        assert q.get_many(2) == [3]
        with pytest.raises(QueueClosedError):
            q.get_many(2)

    def test_close_wakes_blocked_batch_getter(self):
        q = BlockingQueue()
        outcome = []

        def getter():
            try:
                q.get_many(4, timeout=30.0)
            except QueueClosedError:
                outcome.append("closed")

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2)
        assert outcome == ["closed"]

    def test_counts_dequeued_items_not_batches(self):
        q = BlockingQueue()
        q.put_many([1, 2, 3, 4, 5])
        q.get_many(3)
        q.get_many(3)
        assert q.total_dequeued == 5


class TestBlockedGetsStat:
    """``blocked_gets`` counts *waits*, not calls — the contention signal
    the lock-contention benchmark reads."""

    def test_immediate_get_is_not_blocked(self):
        q = BlockingQueue()
        q.put(1)
        q.get()
        assert q.blocked_gets == 0

    def test_waiting_get_counts_once(self):
        q = BlockingQueue()

        def putter():
            time.sleep(0.05)
            q.put(1)

        t = threading.Thread(target=putter)
        t.start()
        assert q.get(timeout=5) == 1
        t.join(timeout=2)
        # One blocked call = one increment, even across spurious wakeups.
        assert q.blocked_gets == 1

    def test_closed_and_drained_get_is_not_blocked(self):
        # Regression: the shutdown path's final get() used to be counted
        # as a blocked get, inflating the contention stats of every run
        # by one per worker.
        q = BlockingQueue()
        q.close()
        for _ in range(3):
            with pytest.raises(QueueClosedError):
                q.get()
        assert q.blocked_gets == 0

    def test_closed_and_drained_get_many_is_not_blocked(self):
        q = BlockingQueue()
        q.put(1)
        q.close()
        assert q.get_many(4) == [1]
        with pytest.raises(QueueClosedError):
            q.get_many(4)
        assert q.blocked_gets == 0

    def test_timed_out_get_still_counts_as_blocked(self):
        q = BlockingQueue()
        with pytest.raises(TimeoutError):
            q.get(timeout=0.01)
        assert q.blocked_gets == 1
