"""Property-based serializability tests of the threaded engine.

Random graphs + random (seeded, deterministic) Δ behaviours, executed by
the serial oracle and the parallel engine at several thread counts: the
records, executed-pair sets, and message counts must coincide exactly —
the paper's Section 2 correctness requirement, checked end to end.
"""

import random
from typing import Dict

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.serializability import assert_serializable
from repro.core.invariants import InvariantChecker
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import (
    EMIT_NOTHING,
    SourceVertex,
    StatefulFunctionVertex,
    Vertex,
)
from repro.events import PhaseInput
from repro.graph.generators import random_dag
from repro.runtime.engine import ParallelEngine


class SparseRandomSource(SourceVertex):
    """Deterministically sparse source: emits with probability p."""

    def __init__(self, seed: int, p: float) -> None:
        super().__init__(seed)
        self.p = p

    def on_execute(self, ctx):
        x = self.rng.random()
        if x < self.p:
            return round(x * 1000, 4)
        return EMIT_NOTHING


def make_inner() -> Vertex:
    def combine(state, ctx):
        # Deterministic function of the change history only.
        delta = sum(
            v for v in ctx.changed_values().values() if isinstance(v, (int, float))
        )
        state["acc"] = state.get("acc", 0.0) + delta
        ctx.record(round(state["acc"], 4))
        if int(state["acc"]) % 3 == 0:
            return round(state["acc"], 4)
        return EMIT_NOTHING

    return StatefulFunctionVertex(combine)


@st.composite
def program_params(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edge_prob = draw(st.floats(min_value=0.15, max_value=0.7))
    graph_seed = draw(st.integers(min_value=0, max_value=10**6))
    src_p = draw(st.floats(min_value=0.1, max_value=1.0))
    phases = draw(st.integers(min_value=1, max_value=25))
    threads = draw(st.sampled_from([1, 2, 4]))
    return n, edge_prob, graph_seed, src_p, phases, threads


def build(n, edge_prob, graph_seed, src_p):
    g = random_dag(n, edge_prob=edge_prob, seed=graph_seed)
    behaviors: Dict[str, Vertex] = {}
    for i, v in enumerate(g.vertices()):
        if not g.predecessors(v):
            behaviors[v] = SparseRandomSource(seed=graph_seed + i, p=src_p)
        else:
            behaviors[v] = make_inner()
    return Program(g, behaviors)


class TestEngineSerializability:
    @given(program_params())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_parallel_matches_serial(self, params):
        n, edge_prob, graph_seed, src_p, phases, threads = params
        prog = build(n, edge_prob, graph_seed, src_p)
        inputs = [PhaseInput(k, float(k)) for k in range(1, phases + 1)]
        serial = SerialExecutor(prog).run(inputs)
        checker = InvariantChecker()
        par = ParallelEngine(prog, num_threads=threads, checker=checker).run(inputs)
        assert_serializable(serial, par)
        assert checker.violations == []

    @given(program_params())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_repeated_parallel_runs_agree(self, params):
        n, edge_prob, graph_seed, src_p, phases, threads = params
        prog = build(n, edge_prob, graph_seed, src_p)
        inputs = [PhaseInput(k, float(k)) for k in range(1, phases + 1)]
        engine = ParallelEngine(prog, num_threads=threads)
        r1 = engine.run(inputs)
        r2 = engine.run(inputs)
        assert r1.records == r2.records
        assert r1.executions_as_set() == r2.executions_as_set()
