"""Fused execution plans across every engine, judged against the
unfused serial oracle — the tentpole correctness bar."""

from __future__ import annotations

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.plan import compile_plan
from repro.core.serial import SerialExecutor
from repro.core.vertex import Vertex
from repro.errors import VertexExecutionError
from repro.models.domains.laundering import build_laundering_workload
from repro.runtime.engine import ParallelEngine
from repro.simulator import CostModel, SimulatedEngine
from repro.streams.workloads import (
    fanin_workload,
    grid_workload,
    pipeline_workload,
)
from repro.testing.fuzz import (
    fuzz,
    fuzz_process,
    run_one,
    spec_for_run,
)
from repro.testing.schedule import make_policy

WORKLOADS = [
    pytest.param(lambda: pipeline_workload(depth=8, phases=20), id="pipeline"),
    pytest.param(lambda: fanin_workload(fan=5, phases=20), id="fanin"),
    pytest.param(
        lambda: grid_workload(width=3, depth=3, phases=15), id="grid"
    ),
    pytest.param(
        lambda: build_laundering_workload(
            phases=60, branches=3, anomaly_rate=0.05
        ),
        id="laundering",
    ),
]


def oracle_and_plan(make):
    program, phases = make()
    oracle = SerialExecutor(program).run(phases)
    return program, phases, oracle, compile_plan(program)


@pytest.mark.parametrize("make", WORKLOADS)
def test_parallel_engine_fused_matches_oracle(make):
    program, phases, oracle, plan = oracle_and_plan(make)
    result = ParallelEngine(plan, num_threads=3, batch_size=2).run(phases)
    report = check_serializable(oracle, result)
    assert report.equivalent, report
    if plan.fused:
        assert "+fused[" in result.engine
        fusion = result.stats["fusion"]
        assert fusion["scheduled_pairs"] <= fusion["member_executions"]


@pytest.mark.parametrize("make", WORKLOADS)
def test_simulated_engine_fused_matches_oracle(make):
    program, phases, oracle, plan = oracle_and_plan(make)
    result = SimulatedEngine(
        plan, num_workers=2, num_processors=2, cost_model=CostModel()
    ).run(phases)
    assert check_serializable(oracle, result).equivalent


def test_process_engine_fused_matches_oracle():
    program, phases = pipeline_workload(depth=6, phases=15)
    oracle = SerialExecutor(program).run(phases)
    from repro.runtime.mp import ProcessEngine

    result = ProcessEngine(
        compile_plan(program), num_workers=2, ipc_batch=4
    ).run(phases)
    report = check_serializable(oracle, result)
    assert report.equivalent, report
    # The whole chain fused: one task frame per phase, not one per vertex.
    assert result.stats["fusion"]["plan_vertices"] == 1


def test_fused_scheduling_reduction_on_chain():
    program, phases = pipeline_workload(depth=8, phases=20)
    plan = compile_plan(program)
    result = ParallelEngine(plan, num_threads=2).run(phases)
    fusion = result.stats["fusion"]
    # 8-deep chain fuses to one stage: >= 2x fewer scheduled pairs.
    assert fusion["member_executions"] >= 2 * fusion["scheduled_pairs"]


class _ExplodeAtPhase(Vertex):
    """Mid-chain member that fails only at a chosen phase."""

    def __init__(self, at_phase):
        self.at_phase = at_phase

    def on_execute(self, ctx):
        if ctx.phase == self.at_phase:
            raise RuntimeError("injected mid-chain fault")
        vals = ctx.changed_values()
        if not vals:
            from repro.core.vertex import EMIT_NOTHING

            return EMIT_NOTHING
        (value,) = vals.values()
        return value


def test_mid_chain_fault_surfaces_member_name_through_engine():
    program, phases = pipeline_workload(depth=6, phases=10)
    victim = program.graph.vertices()[3]  # an interior chain member
    program.behaviors[victim] = _ExplodeAtPhase(at_phase=4)
    plan = compile_plan(program)
    assert len(plan.members(plan.stage_of[victim])) > 1
    with pytest.raises(VertexExecutionError) as err:
        ParallelEngine(plan, num_threads=2).run(phases)
    assert err.value.vertex == victim
    assert err.value.phase == 4


class TestFusedFuzzCampaigns:
    """Satellite: the seeded campaigns over the existing generator
    corpus, with fusion compiled in and the oracle left unfused."""

    def test_thread_campaign_seeded(self):
        report = fuzz(runs=30, seed=1234, fuse=True, do_shrink=False)
        assert report.ok, report.summary()
        assert report.runs == 30

    def test_thread_campaign_batched_and_fused(self):
        report = fuzz(
            runs=15, seed=99, fuse=True, batch_size=3, do_shrink=False
        )
        assert report.ok, report.summary()

    def test_fused_run_one_finds_corpus_chains(self):
        # The corpus must actually exercise fusion: some run in the seeded
        # window compiles to a strictly smaller plan.
        fused_any = False
        for i in range(20):
            spec = spec_for_run(1234, i)
            program, _ = spec.build()
            plan = compile_plan(program)
            fused_any = fused_any or plan.fused
        assert fused_any

    def test_mid_chain_fault_inside_fused_vertex_is_judged(self):
        # Inject a failing member into a corpus workload that fuses, then
        # check the campaign machinery reports it (not a harness crash).
        for i in range(40):
            spec = spec_for_run(7, i)
            program, _ = spec.build()
            plan = compile_plan(program)
            stage = next(
                (s for s, m in plan.members_of.items() if len(m) > 1), None
            )
            if stage is not None:
                break
        assert stage is not None
        victim = plan.members_of[stage][-1]

        orig_build = type(spec).build

        def sabotaged_build(self):
            prog, phases = orig_build(self)
            prog.behaviors[victim] = _ExplodeAtPhase(at_phase=1)
            return prog, phases

        class SabotagedSpec(type(spec)):
            build = sabotaged_build

        bad_spec = SabotagedSpec(**spec.__dict__)
        outcome = run_one(bad_spec, make_policy("random", 5), fuse=True)
        assert not outcome.passed
        assert victim in outcome.reason

    def test_process_campaign_seeded(self):
        report = fuzz_process(runs=3, seed=21, fuse=True)
        assert report.ok, report.summary()
