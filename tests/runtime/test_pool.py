"""Tests for the computation thread pool."""

import threading
import time

import pytest

from repro.errors import EngineError
from repro.runtime.pool import ComputationThreadPool


class TestPool:
    def test_runs_target_per_worker(self):
        seen = []
        lock = threading.Lock()

        def target(wid: int) -> None:
            with lock:
                seen.append(wid)

        pool = ComputationThreadPool(4, target)
        pool.start()
        pool.join(timeout=5)
        assert sorted(seen) == [0, 1, 2, 3]

    def test_zero_threads_rejected(self):
        with pytest.raises(EngineError):
            ComputationThreadPool(0, lambda wid: None)

    def test_error_collection_and_reraise(self):
        def target(wid: int) -> None:
            if wid == 1:
                raise ValueError("worker 1 failed")

        pool = ComputationThreadPool(3, target)
        pool.start()
        pool.join(timeout=5)
        assert len(pool.errors) == 1
        with pytest.raises(ValueError, match="worker 1 failed"):
            pool.reraise()

    def test_on_error_callback(self):
        caught = []

        def target(wid: int) -> None:
            raise RuntimeError("x")

        pool = ComputationThreadPool(1, target)
        pool.on_error = caught.append
        pool.start()
        pool.join(timeout=5)
        assert len(caught) == 1
        assert isinstance(caught[0], RuntimeError)

    def test_join_timeout_raises_on_stuck_thread(self):
        release = threading.Event()

        def target(wid: int) -> None:
            release.wait(timeout=10)

        pool = ComputationThreadPool(1, target)
        pool.start()
        with pytest.raises(EngineError, match="terminate"):
            pool.join(timeout=0.05)
        assert pool.any_alive()
        release.set()
        pool.join(timeout=5)
        assert not pool.any_alive()

    def test_reraise_noop_without_errors(self):
        pool = ComputationThreadPool(1, lambda wid: None)
        pool.start()
        pool.join(timeout=5)
        pool.reraise()  # no exception

    def test_join_timeout_names_prior_worker_error(self):
        # Regression: when worker A crashes and worker B wedges as a
        # result, join() used to raise a bare "failed to terminate"
        # EngineError before the caller could reach reraise() — burying
        # the root cause.  The timeout error must now carry it.
        release = threading.Event()

        def target(wid: int) -> None:
            if wid == 0:
                raise ValueError("root cause")
            release.wait(timeout=10)

        pool = ComputationThreadPool(2, target)
        pool.start()
        with pytest.raises(EngineError) as ei:
            pool.join(timeout=0.1)
        try:
            assert "root cause" in str(ei.value)
            assert "ValueError" in str(ei.value)
            assert isinstance(ei.value.__cause__, ValueError)
            assert [type(e) for e in ei.value.worker_errors] == [ValueError]
        finally:
            release.set()
            pool.join(timeout=5)
        assert not pool.any_alive()

    def test_join_timeout_without_error_has_no_cause(self):
        release = threading.Event()

        def target(wid: int) -> None:
            release.wait(timeout=10)

        pool = ComputationThreadPool(1, target)
        pool.start()
        with pytest.raises(EngineError) as ei:
            pool.join(timeout=0.05)
        try:
            assert ei.value.__cause__ is None
            assert ei.value.worker_errors == []
        finally:
            release.set()
            pool.join(timeout=5)
