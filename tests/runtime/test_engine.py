"""Tests for the multithreaded parallel engine."""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.invariants import InvariantChecker
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.tracer import ExecutionTracer
from repro.core.vertex import FunctionVertex, PassthroughSource
from repro.errors import EngineError, VertexExecutionError
from repro.events import PhaseInput
from repro.graph.generators import chain_graph, fig1_graph
from repro.runtime.engine import ParallelEngine
from repro.runtime.environment import EnvironmentConfig
from repro.streams.workloads import fig1_workload, grid_workload

from tests.conftest import make_chain_program, signals


class TestBasicExecution:
    def test_single_phase_single_thread(self):
        prog = make_chain_program(3, {1: "x"})
        res = ParallelEngine(prog, num_threads=1).run(signals(1))
        assert res.records["n2"] == [(1, "x")]
        assert res.engine == "parallel[k=1]"

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_serial_oracle(self, threads):
        prog, phases = grid_workload(3, 3, phases=25, seed=2)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=threads).run(phases)
        assert_serializable(serial, par)

    def test_invariant_checker_clean(self):
        prog, phases = fig1_workload(phases=15)
        checker = InvariantChecker()
        ParallelEngine(prog, num_threads=3, checker=checker).run(phases)
        assert checker.checks_run > 0
        assert checker.violations == []

    def test_zero_phases(self):
        prog = make_chain_program(2, {})
        res = ParallelEngine(prog, num_threads=2).run([])
        assert res.execution_count == 0
        assert res.phases_run == 0

    def test_invalid_thread_count(self):
        prog = make_chain_program(2, {})
        with pytest.raises(EngineError):
            ParallelEngine(prog, num_threads=0)

    def test_rerun_same_engine_object(self):
        prog = make_chain_program(3, {1: 1, 2: 2})
        engine = ParallelEngine(prog, num_threads=2)
        r1 = engine.run(signals(2))
        r2 = engine.run(signals(2))
        assert r1.records == r2.records


class TestStats:
    def test_stats_populated(self):
        prog, phases = grid_workload(3, 3, phases=20)
        res = ParallelEngine(prog, num_threads=2).run(phases)
        assert res.stats["num_threads"] == 2
        assert res.stats["lock"]["acquisitions"] > 0
        assert res.stats["queue"]["total_enqueued"] == res.stats["queue"][
            "total_dequeued"
        ]
        assert sum(res.stats["per_worker_executions"].values()) == res.execution_count

    def test_tracer_concurrency_stats(self):
        prog, phases = fig1_workload(phases=20)
        tracer = ExecutionTracer()
        res = ParallelEngine(prog, num_threads=4, tracer=tracer).run(phases)
        assert res.stats["max_concurrent_pairs"] >= 1
        assert res.stats["max_concurrent_phases"] >= 1
        assert len(tracer.executed_pairs()) == res.execution_count


class TestFailureHandling:
    def test_vertex_exception_propagates(self):
        g = chain_graph(2)

        def boom(ctx):
            if ctx.phase == 2:
                raise RuntimeError("deliberate")
            return ctx.input("v1")

        prog = Program(g, {"v1": PassthroughSource(), "v2": FunctionVertex(boom)})
        phases = [PhaseInput(k, float(k), {"v1": k}) for k in (1, 2, 3)]
        with pytest.raises(VertexExecutionError, match="deliberate"):
            ParallelEngine(prog, num_threads=2).run(phases)

    def test_failure_mentions_vertex_and_phase(self):
        g = chain_graph(1)

        def boom(ctx):
            raise ValueError("nope")

        class BoomSource(PassthroughSource):
            def on_execute(self, ctx):
                raise ValueError("nope")

        prog = Program(g, {"v1": BoomSource()})
        with pytest.raises(VertexExecutionError) as ei:
            ParallelEngine(prog, num_threads=1).run(signals(1))
        assert ei.value.vertex == "v1"
        assert ei.value.phase == 1

    def test_engine_usable_after_failure(self):
        g = chain_graph(1)
        state = {"fail": True}

        class FlakySource(PassthroughSource):
            def on_execute(self, ctx):
                if state["fail"]:
                    raise RuntimeError("first run fails")
                return 1

        prog = Program(g, {"v1": FlakySource()})
        engine = ParallelEngine(prog, num_threads=2)
        with pytest.raises(VertexExecutionError):
            engine.run(signals(2))
        state["fail"] = False
        res = engine.run(signals(2))
        assert res.execution_count == 2


class TestFlowControl:
    def test_bounded_in_flight_matches_serial(self):
        prog, phases = grid_workload(2, 4, phases=20, seed=3)
        serial = SerialExecutor(prog).run(phases)
        res = ParallelEngine(
            prog,
            num_threads=3,
            env=EnvironmentConfig(max_in_flight_phases=2),
        ).run(phases)
        assert_serializable(serial, res)

    def test_barrier_config_matches_serial(self):
        prog, phases = grid_workload(2, 3, phases=15, seed=4)
        serial = SerialExecutor(prog).run(phases)
        res = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(max_in_flight_phases=1),
        ).run(phases)
        assert_serializable(serial, res)

    def test_pacing_config(self):
        prog = make_chain_program(2, {1: 1, 2: 2})
        res = ParallelEngine(
            prog, num_threads=1, env=EnvironmentConfig(pacing=0.001)
        ).run(signals(2))
        assert res.execution_count == 4

    def test_invalid_env_config(self):
        with pytest.raises(EngineError):
            EnvironmentConfig(pacing=-1.0)
        with pytest.raises(EngineError):
            EnvironmentConfig(max_in_flight_phases=0)


class TestPipelining:
    def test_multiple_phases_in_flight(self):
        """With many workers and no flow control, distinct phases execute
        concurrently (the Figure 1 behaviour) — detectable even under the
        GIL because execute intervals interleave."""
        prog, phases = fig1_workload(phases=30)
        tracer = ExecutionTracer()
        import time as _time

        # give vertices measurable duration via a sleeping wrapper
        for name, beh in prog.behaviors.items():
            orig = beh.on_execute

            def slow(ctx, orig=orig):
                _time.sleep(0.0005)
                return orig(ctx)

            beh.on_execute = slow  # type: ignore[method-assign]
        res = ParallelEngine(prog, num_threads=4, tracer=tracer).run(phases)
        assert res.stats["max_concurrent_pairs"] >= 2
