"""Tests for the multithreaded parallel engine."""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.invariants import InvariantChecker
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.tracer import ExecutionTracer
from repro.core.vertex import FunctionVertex, PassthroughSource
from repro.errors import EngineError, VertexExecutionError
from repro.events import PhaseInput
from repro.graph.generators import chain_graph, fig1_graph
from repro.runtime.engine import ParallelEngine
from repro.runtime.environment import EnvironmentConfig
from repro.streams.workloads import fig1_workload, grid_workload

from tests.conftest import make_chain_program, signals


class TestBasicExecution:
    def test_single_phase_single_thread(self):
        prog = make_chain_program(3, {1: "x"})
        res = ParallelEngine(prog, num_threads=1).run(signals(1))
        assert res.records["n2"] == [(1, "x")]
        assert res.engine == "parallel[k=1]"

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_serial_oracle(self, threads):
        prog, phases = grid_workload(3, 3, phases=25, seed=2)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=threads).run(phases)
        assert_serializable(serial, par)

    def test_invariant_checker_clean(self):
        prog, phases = fig1_workload(phases=15)
        checker = InvariantChecker()
        ParallelEngine(prog, num_threads=3, checker=checker).run(phases)
        assert checker.checks_run > 0
        assert checker.violations == []

    def test_zero_phases(self):
        prog = make_chain_program(2, {})
        res = ParallelEngine(prog, num_threads=2).run([])
        assert res.execution_count == 0
        assert res.phases_run == 0

    def test_invalid_thread_count(self):
        prog = make_chain_program(2, {})
        with pytest.raises(EngineError):
            ParallelEngine(prog, num_threads=0)

    def test_rerun_same_engine_object(self):
        prog = make_chain_program(3, {1: 1, 2: 2})
        engine = ParallelEngine(prog, num_threads=2)
        r1 = engine.run(signals(2))
        r2 = engine.run(signals(2))
        assert r1.records == r2.records


class TestStats:
    def test_stats_populated(self):
        prog, phases = grid_workload(3, 3, phases=20)
        res = ParallelEngine(prog, num_threads=2).run(phases)
        assert res.stats["num_threads"] == 2
        assert res.stats["lock"]["acquisitions"] > 0
        assert res.stats["queue"]["total_enqueued"] == res.stats["queue"][
            "total_dequeued"
        ]
        assert sum(res.stats["per_worker_executions"].values()) == res.execution_count

    def test_tracer_concurrency_stats(self):
        prog, phases = fig1_workload(phases=20)
        tracer = ExecutionTracer()
        res = ParallelEngine(prog, num_threads=4, tracer=tracer).run(phases)
        assert res.stats["max_concurrent_pairs"] >= 1
        assert res.stats["max_concurrent_phases"] >= 1
        assert len(tracer.executed_pairs()) == res.execution_count


class TestFailureHandling:
    def test_vertex_exception_propagates(self):
        g = chain_graph(2)

        def boom(ctx):
            if ctx.phase == 2:
                raise RuntimeError("deliberate")
            return ctx.input("v1")

        prog = Program(g, {"v1": PassthroughSource(), "v2": FunctionVertex(boom)})
        phases = [PhaseInput(k, float(k), {"v1": k}) for k in (1, 2, 3)]
        with pytest.raises(VertexExecutionError, match="deliberate"):
            ParallelEngine(prog, num_threads=2).run(phases)

    def test_failure_mentions_vertex_and_phase(self):
        g = chain_graph(1)

        def boom(ctx):
            raise ValueError("nope")

        class BoomSource(PassthroughSource):
            def on_execute(self, ctx):
                raise ValueError("nope")

        prog = Program(g, {"v1": BoomSource()})
        with pytest.raises(VertexExecutionError) as ei:
            ParallelEngine(prog, num_threads=1).run(signals(1))
        assert ei.value.vertex == "v1"
        assert ei.value.phase == 1

    def test_engine_usable_after_failure(self):
        g = chain_graph(1)
        state = {"fail": True}

        class FlakySource(PassthroughSource):
            def on_execute(self, ctx):
                if state["fail"]:
                    raise RuntimeError("first run fails")
                return 1

        prog = Program(g, {"v1": FlakySource()})
        engine = ParallelEngine(prog, num_threads=2)
        with pytest.raises(VertexExecutionError):
            engine.run(signals(2))
        state["fail"] = False
        res = engine.run(signals(2))
        assert res.execution_count == 2


class TestFlowControl:
    def test_bounded_in_flight_matches_serial(self):
        prog, phases = grid_workload(2, 4, phases=20, seed=3)
        serial = SerialExecutor(prog).run(phases)
        res = ParallelEngine(
            prog,
            num_threads=3,
            env=EnvironmentConfig(max_in_flight_phases=2),
        ).run(phases)
        assert_serializable(serial, res)

    def test_barrier_config_matches_serial(self):
        prog, phases = grid_workload(2, 3, phases=15, seed=4)
        serial = SerialExecutor(prog).run(phases)
        res = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(max_in_flight_phases=1),
        ).run(phases)
        assert_serializable(serial, res)

    def test_pacing_config(self):
        prog = make_chain_program(2, {1: 1, 2: 2})
        res = ParallelEngine(
            prog, num_threads=1, env=EnvironmentConfig(pacing=0.001)
        ).run(signals(2))
        assert res.execution_count == 4

    def test_invalid_env_config(self):
        with pytest.raises(EngineError):
            EnvironmentConfig(pacing=-1.0)
        with pytest.raises(EngineError):
            EnvironmentConfig(max_in_flight_phases=0)


class TestPipelining:
    def test_multiple_phases_in_flight(self):
        """With many workers and no flow control, distinct phases execute
        concurrently (the Figure 1 behaviour) — detectable even under the
        GIL because execute intervals interleave."""
        prog, phases = fig1_workload(phases=30)
        tracer = ExecutionTracer()
        import time as _time

        # give vertices measurable duration via a sleeping wrapper
        for name, beh in prog.behaviors.items():
            orig = beh.on_execute

            def slow(ctx, orig=orig):
                _time.sleep(0.0005)
                return orig(ctx)

            beh.on_execute = slow  # type: ignore[method-assign]
        res = ParallelEngine(prog, num_threads=4, tracer=tracer).run(phases)
        assert res.stats["max_concurrent_pairs"] >= 2


class TestShutdownErrorPropagation:
    """The watchdog must surface root causes, not bury them.

    Regressions covered: ``run`` used to raise a generic "environment
    thread failed to terminate" EngineError *without* joining the pool or
    calling ``reraise()`` — leaking live computation threads and masking
    the vertex exception that wedged the environment in the first place.
    """

    def test_worker_error_beats_wedged_environment(self):
        # A crashing vertex while the environment sleeps in its pacing
        # delay: the caller must see the VertexExecutionError, not the
        # watchdog's generic wedge report.
        g = chain_graph(1)

        class BoomSource(PassthroughSource):
            def on_execute(self, ctx):
                raise RuntimeError("root cause")

        prog = Program(g, {"v1": BoomSource()})
        engine = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(pacing=5.0),
            join_timeout=0.2,
        )
        with pytest.raises(VertexExecutionError, match="root cause"):
            engine.run(signals(2))

    def test_wedged_environment_does_not_leak_workers(self):
        # Environment wedged in a pacing sleep with healthy workers: the
        # run still fails with the wedge report, but only after waking and
        # joining every computation thread.
        import threading as _threading

        prog = make_chain_program(2, {1: "x"})
        engine = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(pacing=5.0),
            join_timeout=0.3,
        )
        with pytest.raises(EngineError, match="environment thread failed"):
            engine.run(signals(1))
        assert not [
            t for t in _threading.enumerate() if t.name.startswith("compute-")
        ]


class TestFlowControlAbort:
    """The environment's flow-control wait is abort-aware and blocking.

    Regression: it used to poll ``flow_sem.acquire(timeout=0.05)`` in a
    loop — burning CPU on real threads and, worse, advancing the virtual
    clock through timeout deadlines so deterministic runs became
    timing-dependent.
    """

    def _crashing_chain(self):
        g = chain_graph(2)

        def boom(ctx):
            raise RuntimeError("crash under flow control")

        return Program(
            g, {"v1": PassthroughSource(), "v2": FunctionVertex(boom)}
        )

    def test_worker_crash_releases_parked_environment_os_backend(self):
        prog = self._crashing_chain()
        phases = [PhaseInput(k, float(k), {"v1": k}) for k in (1, 2, 3)]
        engine = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(max_in_flight_phases=1),
            join_timeout=5.0,
        )
        with pytest.raises(VertexExecutionError, match="crash under flow"):
            engine.run(phases)

    def test_flow_control_never_advances_virtual_clock(self):
        # A healthy flow-controlled run under the deterministic scheduler:
        # with a blocking (not polling) wait, no timed wait ever fires, so
        # the virtual clock stays at zero.
        from repro.testing.schedule import (
            RoundRobinPolicy,
            VirtualBackend,
            VirtualScheduler,
        )

        prog, phases = grid_workload(2, 2, phases=6, seed=9)
        serial = SerialExecutor(prog).run(phases)
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        res = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(max_in_flight_phases=1),
            backend=VirtualBackend(sched),
        ).run(phases)
        sched.shutdown()
        assert_serializable(serial, res)
        assert sched.now() == 0.0

    def test_abort_wakes_parked_environment_virtual_backend(self):
        # Crash while the environment is parked on the semaphore, under
        # the deterministic scheduler: the run must terminate through the
        # abort protocol alone (no timeouts => clock still zero).
        from repro.testing.schedule import (
            RoundRobinPolicy,
            VirtualBackend,
            VirtualScheduler,
        )

        prog = self._crashing_chain()
        phases = [PhaseInput(k, float(k), {"v1": k}) for k in (1, 2, 3)]
        sched = VirtualScheduler(policy=RoundRobinPolicy())
        engine = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(max_in_flight_phases=1),
            backend=VirtualBackend(sched),
        )
        with pytest.raises(VertexExecutionError, match="crash under flow"):
            engine.run(phases)
        sched.shutdown()
        assert sched.now() == 0.0


class TestBatchedCommits:
    """The batched low-contention commit path (``batch_size`` > 1)."""

    @pytest.mark.parametrize("batch", [2, 4, 16])
    @pytest.mark.parametrize("threads", [1, 4])
    def test_matches_serial_oracle(self, batch, threads):
        prog, phases = grid_workload(3, 3, phases=20, seed=5)
        serial = SerialExecutor(prog).run(phases)
        res = ParallelEngine(
            prog, num_threads=threads, batch_size=batch
        ).run(phases)
        assert_serializable(serial, res)

    def test_invariant_checker_clean_when_batched(self):
        prog, phases = fig1_workload(phases=15)
        checker = InvariantChecker()
        ParallelEngine(
            prog, num_threads=3, batch_size=4, checker=checker
        ).run(phases)
        assert checker.checks_run > 0
        assert checker.violations == []

    def test_batching_stats_account_for_every_commit(self):
        # run_length=1: a coalesced run commits all its members in one
        # critical section, which the batching stats record as a single
        # batch larger than batch_size — here we verify the explicit
        # member-batching accumulator, so pin single-pair dispatch.
        prog, phases = grid_workload(3, 3, phases=10, seed=1)
        res = ParallelEngine(
            prog, num_threads=2, batch_size=8, run_length=1
        ).run(phases)
        b = res.stats["batching"]
        assert b["batch_size"] == 8
        assert sum(b["batch_sizes"].values()) == b["batches"]
        assert (
            sum(size * n for size, n in b["batch_sizes"].items())
            == res.execution_count
        )
        assert max(b["batch_sizes"]) <= 8
        assert b["mean_batch_size"] >= 1.0
        assert b["commits_per_acquisition"] > 0.0

    def test_engine_label(self):
        prog = make_chain_program(2, {1: "x"})
        res = ParallelEngine(prog, num_threads=2, batch_size=1).run(signals(1))
        assert res.engine == "parallel[k=2]"  # unchanged from the paper loop
        res = ParallelEngine(prog, num_threads=2, batch_size=3).run(signals(1))
        assert res.engine == "parallel[k=2,b=3]"

    def test_batch_size_flows_from_env_config(self):
        prog = make_chain_program(2, {1: "x"})
        res = ParallelEngine(
            prog, num_threads=1, env=EnvironmentConfig(batch_size=4)
        ).run(signals(1))
        assert res.stats["batching"]["batch_size"] == 4
        # An explicit engine kwarg overrides the environment default.
        res = ParallelEngine(
            prog,
            num_threads=1,
            env=EnvironmentConfig(batch_size=4),
            batch_size=2,
        ).run(signals(1))
        assert res.stats["batching"]["batch_size"] == 2

    def test_invalid_batch_size_rejected(self):
        prog = make_chain_program(2, {})
        with pytest.raises(EngineError):
            ParallelEngine(prog, batch_size=0)
        with pytest.raises(EngineError):
            EnvironmentConfig(batch_size=0)

    def test_batch_one_is_step_identical_to_default(self):
        # batch_size=1 must be *step-for-step* the paper's unbatched loop:
        # the same virtual-scheduler seed yields the same decision trace.
        from repro.testing.fuzz import run_one, spec_for_run
        from repro.testing.schedule import RandomPolicy

        for seed in range(3):
            spec = spec_for_run(7, seed)
            a = run_one(spec, RandomPolicy(seed=11 + seed))  # default path
            b = run_one(spec, RandomPolicy(seed=11 + seed), batch_size=1)
            assert a.passed and b.passed, (a.reason, b.reason)
            assert a.trace_hash == b.trace_hash
            assert a.parallel.records == b.parallel.records

    def test_batched_serializable_under_virtual_scheduler(self):
        from repro.testing.fuzz import run_one, spec_for_run
        from repro.testing.schedule import PriorityFuzzPolicy

        for i in range(4):
            spec = spec_for_run(3, i)
            out = run_one(spec, PriorityFuzzPolicy(seed=i), batch_size=4)
            assert out.passed, out.reason
