"""Temporal phase-run coalescing (ALGORITHM.md §5.7).

Three layers of coverage:

* **SchedulerState unit tests** for ``claim_run`` — the claim ledger,
  head validation, the salvage re-dispatch path and the commit
  equivalence (one batch vs member-at-a-time must reach the same state);
* a **differential engine matrix** over the seeded fuzz corpus:
  {coalesced, single-pair} × cone × {fused, unfused} across the virtual,
  threaded, process and DES-simulated engines, always judged against the
  unfused serial oracle (the virtual rows also run the invariant-checked
  :class:`~repro.testing.monitor.RaceMonitor`);
* **property checks** that the optimisation actually engages: runs form
  on deep pipelines, scheduler lock acquisitions drop, suppression keeps
  short-circuiting *inside* a run, a mid-run vertex failure attributes
  the exact failing phase with the unexecuted tail salvaged, and the
  global frontier stays pinned to single-pair dispatch.
"""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.invariants import InvariantChecker
from repro.core.plan import compile_plan
from repro.core.serial import SerialExecutor
from repro.core.state import ADAPTIVE_RUN_CEILING, SchedulerState
from repro.errors import (
    DuplicateExecutionError,
    SchedulerError,
    VertexExecutionError,
)
from repro.events import PhaseInput
from repro.graph.generators import chain_graph
from repro.graph.model import ComputationGraph
from repro.graph.numbering import number_graph
from repro.core.program import Program
from repro.core.vertex import Vertex
from repro.runtime.engine import ParallelEngine
from repro.runtime.mp import ProcessEngine
from repro.runtime.mp.lifecycle import ProcessWorkerPool
from repro.runtime.mp.protocol import (
    ResultBatch,
    RunMember,
    RunMsg,
    encode,
)
from repro.simulator import SimulatedEngine
from repro.streams.workloads import pipeline_workload
from repro.testing.fuzz import (
    process_config_for_run,
    run_one,
    run_one_process,
    spec_for_run,
)
from repro.testing.schedule import make_policy

CORPUS_SEED = 2025  # same corpus as the frontier-equivalence matrix
POLICIES = ("random", "round-robin", "priority", "random")

RUN_LENGTHS = (None, 1)  # adaptive coalescing vs the single-pair baseline
FUSE = (False, True)


def policy_for(i):
    return make_policy(POLICIES[i % len(POLICIES)], 1000 + i)


# ---------------------------------------------------------------------------
# SchedulerState.claim_run
# ---------------------------------------------------------------------------


def chain_state(n=3, frontier="cone", checker=True):
    nb = number_graph(chain_graph(n))
    return SchedulerState(
        nb,
        checker=InvariantChecker() if checker else None,
        frontier=frontier,
    )


def advance_source(st, phases, source=1, target=2):
    """Start *phases* phases and complete the chain source through all of
    them, leaving (target, 1) ready and (target, 2..phases) full."""
    for _ in range(phases + 1):
        st.start_phase()
    for p in range(1, phases + 1):
        st.complete_executions([(source, p, [target])])


class TestClaimRun:
    def test_adaptive_claims_full_backlog(self):
        st = chain_state()
        advance_source(st, 4)
        assert st.claim_run(2, 1) == [1, 2, 3, 4]
        assert st.run_claimed_set() == {(2, 2), (2, 3), (2, 4)}
        # Claimed members leave the live ready view but stay full.
        assert (2, 2) not in st.ready_set()
        assert (2, 2) in st.full_set()
        assert st.is_run_claimed((2, 2))
        assert not st.is_run_claimed((2, 1))  # the head was ready, not claimed

    def test_cap_bounds_the_walk(self):
        st = chain_state()
        advance_source(st, 4)
        assert st.claim_run(2, 1, max_len=2) == [1, 2]
        assert st.run_claimed_set() == {(2, 2)}

    def test_cap_below_one_rejected(self):
        st = chain_state()
        advance_source(st, 2)
        with pytest.raises(SchedulerError, match="max_len"):
            st.claim_run(2, 1, max_len=0)

    def test_global_mode_never_extends(self):
        st = chain_state(frontier="global")
        for _ in range(4):
            st.start_phase()
        for p in range(1, 4):
            st.complete_executions([(1, p, [2])])
        assert st.claim_run(2, 1) == [1]
        assert st.run_claimed_set() == frozenset()

    def test_head_must_be_ready_or_claimed(self):
        st = chain_state()
        advance_source(st, 3)
        # (2, 2) is full but neither ready nor claimed.
        with pytest.raises(SchedulerError, match="ready or claimed"):
            st.claim_run(2, 2)

    def test_executed_head_is_a_duplicate(self):
        st = chain_state()
        advance_source(st, 2)
        st.complete_executions([(2, 1, [3])])
        with pytest.raises(DuplicateExecutionError):
            st.claim_run(2, 1)

    def test_batch_commit_accepts_claimed_members(self):
        st = chain_state()
        advance_source(st, 3)
        run = st.claim_run(2, 1)
        newly = st.complete_executions([(2, q, [3]) for q in run])
        assert (3, 1) in newly
        assert st.run_claimed_set() == frozenset()
        assert st.coalescing_stats() == {
            "runs_scheduled": 1,
            "pairs_coalesced": 2,
            "mean_run_length": 3.0,
        }

    def test_member_at_a_time_commit_matches_batch(self):
        # The fault-salvage path commits members ascending one by one;
        # it must reach the same scheduling state as the one-batch path.
        a, b = chain_state(), chain_state()
        for st in (a, b):
            advance_source(st, 3)
            st.claim_run(2, 1)
        a.complete_executions([(2, q, [3]) for q in (1, 2, 3)])
        for q in (1, 2, 3):
            b.complete_executions([(2, q, [3])])
        assert a.ready_set() == b.ready_set()
        assert a.full_set() == b.full_set()
        assert a.partial_set() == b.partial_set()
        assert a.run_claimed_set() == b.run_claimed_set() == frozenset()

    def test_claimed_head_redispatch_recoalesces(self):
        # Salvage: the head committed alone, the claimed tail was
        # requeued; its first member may head a fresh run.
        st = chain_state()
        advance_source(st, 4)
        assert st.claim_run(2, 1) == [1, 2, 3, 4]
        st.complete_executions([(2, 1, [3])])
        assert st.is_run_claimed((2, 2))
        assert st.claim_run(2, 2) == [2, 3, 4]
        st.complete_executions([(2, q, [3]) for q in (2, 3, 4)])
        assert st.run_claimed_set() == frozenset()

    def test_adaptive_ceiling(self):
        st = chain_state()
        advance_source(st, ADAPTIVE_RUN_CEILING + 20)
        run = st.claim_run(2, 1)
        assert len(run) == ADAPTIVE_RUN_CEILING


# ---------------------------------------------------------------------------
# Differential engine matrix (vs the unfused serial oracle)
# ---------------------------------------------------------------------------


class TestVirtualEngineMatrix:
    @pytest.mark.parametrize("run_length", RUN_LENGTHS)
    @pytest.mark.parametrize("fuse", FUSE)
    def test_campaign_matches_serial_oracle(self, run_length, fuse):
        size = 200 if run_length is None else 60
        for i in range(size):
            spec = spec_for_run(CORPUS_SEED, i)
            outcome = run_one(
                spec, policy_for(i), fuse=fuse, frontier="cone",
                run_length=run_length,
            )
            assert outcome.passed, (
                f"spec {i} [{spec.describe()}] run_length={run_length} "
                f"fuse={fuse}: {outcome.reason}"
            )

    def test_fixed_cap_campaign(self):
        for i in range(60):
            spec = spec_for_run(CORPUS_SEED, i)
            outcome = run_one(
                spec, policy_for(i), frontier="cone", run_length=3
            )
            assert outcome.passed, (
                f"spec {i} run_length=3: {outcome.reason}"
            )

    def test_single_pair_trace_identical_to_default(self):
        # run_length=1 must not merely be equivalent — it must replay
        # the pre-coalescing schedule step for step.
        for i in range(20):
            spec = spec_for_run(CORPUS_SEED, i)
            base = run_one(spec, policy_for(i), frontier="cone")
            pinned = run_one(
                spec, policy_for(i), frontier="cone", run_length=1
            )
            assert base.passed and pinned.passed
            assert base.trace_hash == pinned.trace_hash, f"spec {i}"


class TestSuppressionInsideRuns:
    """Change suppression composed with coalescing: member commits run
    back-to-back, and each one updates the edge latch the *next* member's
    suppression test reads — judged with the elision-aware check against
    the unsuppressed oracle."""

    @pytest.mark.parametrize("fuse", FUSE)
    def test_virtual_campaign(self, fuse):
        for i in range(60):
            spec = spec_for_run(CORPUS_SEED, i, suppress=True)
            outcome = run_one(
                spec, policy_for(i), fuse=fuse, frontier="cone",
                suppress=True, run_length=None,
            )
            assert outcome.passed, (
                f"spec {i} [{spec.describe()}] fuse={fuse} "
                f"suppress+coalesce: {outcome.reason}"
            )

    def test_campaign_is_not_vacuous(self):
        # At least some corpus runs must both coalesce a run AND
        # suppress a message, or the composition above tests nothing.
        both = 0
        for i in range(60):
            spec = spec_for_run(CORPUS_SEED, i, suppress=True)
            outcome = run_one(
                spec, policy_for(i), frontier="cone", suppress=True,
                run_length=None,
            )
            assert outcome.passed
            stats = outcome.parallel.stats
            if (
                stats["coalescing"]["pairs_coalesced"] > 0
                and stats["suppression"]["suppressed_messages"] > 0
            ):
                both += 1
        assert both >= 5, (
            f"only {both}/60 runs exercised suppression inside a "
            f"coalesced schedule"
        )


def run_threaded(spec, run_length, fuse):
    program, phases = spec.build_picklable()
    serial = SerialExecutor(program).run(phases)
    serial_state = {
        name: beh.snapshot_state() for name, beh in program.behaviors.items()
    }
    engine = ParallelEngine(
        compile_plan(program, fuse=fuse),
        num_threads=spec.threads,
        frontier="cone",
        run_length=run_length,
    )
    result = engine.run(phases)
    report = check_serializable(serial, result)
    diffs = {
        name: (expected, program.behaviors[name].snapshot_state())
        for name, expected in serial_state.items()
        if program.behaviors[name].snapshot_state() != expected
    }
    return report, diffs, result


class TestThreadedEngineMatrix:
    @pytest.mark.parametrize("run_length", RUN_LENGTHS)
    @pytest.mark.parametrize("fuse", FUSE)
    def test_threaded_matches_serial_oracle(self, run_length, fuse):
        for i in range(12):
            spec = spec_for_run(CORPUS_SEED, i)
            report, diffs, result = run_threaded(spec, run_length, fuse)
            assert report, (
                f"spec {i} run_length={run_length} fuse={fuse}: {report}"
            )
            assert not diffs, (
                f"spec {i} run_length={run_length} fuse={fuse}: "
                f"final state diverged: {diffs}"
            )
            section = result.stats["coalescing"]
            assert section["enabled"] == (run_length != 1)
            assert section["run_length_cap"] == run_length


class TestProcessEngineMatrix:
    @pytest.mark.parametrize("run_length", RUN_LENGTHS)
    def test_process_matches_serial_oracle(self, run_length):
        for i in range(4):
            spec = spec_for_run(CORPUS_SEED, i, max_vertices=6, max_phases=4)
            config = process_config_for_run(CORPUS_SEED, i)
            outcome = run_one_process(
                spec, config, start_method="fork", frontier="cone",
                run_length=run_length,
            )
            assert outcome.passed, (
                f"spec {i} run_length={run_length}: {outcome.reason}"
            )


class TestSimulatedEngineMatrix:
    @pytest.mark.parametrize("run_length", (None, 3, 1))
    def test_simulated_matches_serial_oracle(self, run_length):
        for i in range(8):
            spec = spec_for_run(CORPUS_SEED, i)
            program, phases = spec.build()
            serial = SerialExecutor(program).run(phases)
            result = SimulatedEngine(
                program, num_workers=2, num_processors=2, frontier="cone",
                run_length=run_length,
            ).run(phases)
            report = check_serializable(serial, result)
            assert report, f"spec {i} run_length={run_length}: {report}"
            section = result.stats["coalescing"]
            assert section["enabled"] == (run_length != 1)


# ---------------------------------------------------------------------------
# The optimisation actually engages
# ---------------------------------------------------------------------------


class TestCoalescingEngages:
    def test_deep_pipeline_forms_runs_and_sheds_lock_traffic(self):
        program, phases = pipeline_workload(depth=6, phases=40, seed=11)
        serial = SerialExecutor(program).run(phases)

        def run(run_length):
            prog, phs = pipeline_workload(depth=6, phases=40, seed=11)
            engine = ParallelEngine(
                compile_plan(prog), num_threads=3, frontier="cone",
                run_length=run_length,
            )
            return engine.run(phs)

        coalesced = run(None)
        single = run(1)
        report = check_serializable(serial, coalesced)
        assert report, report
        section = coalesced.stats["coalescing"]
        assert section["runs_scheduled"] > 0
        assert section["pairs_coalesced"] > 0
        assert section["mean_run_length"] > 1.0
        assert single.stats["coalescing"]["pairs_coalesced"] == 0
        # The headline: one prepare + one commit critical section per
        # run, not per pair, so the scheduler lock is hit far less.
        assert (
            coalesced.stats["lock"]["acquisitions"]
            < single.stats["lock"]["acquisitions"]
        )

    def test_simulated_pipeline_sheds_lock_requests(self):
        def run(run_length):
            prog, phs = pipeline_workload(depth=5, phases=30, seed=7)
            return SimulatedEngine(
                prog, num_workers=2, num_processors=2, frontier="cone",
                run_length=run_length,
            ).run(phs)

        coalesced, single = run(None), run(1)
        assert coalesced.records == single.records
        assert (
            coalesced.stats["lock"]["total_requests"]
            < single.stats["lock"]["total_requests"]
        )
        assert coalesced.stats["coalescing"]["pairs_coalesced"] > 0

    def test_global_frontier_pins_to_single_pair(self):
        # Coalescing must never perturb the Listing 1/2 global schedule:
        # requesting it under the global frontier is a silent no-op.
        prog, phs = pipeline_workload(depth=4, phases=12, seed=3)
        engine = ParallelEngine(
            compile_plan(prog), num_threads=2, frontier="global",
            run_length=None,
        )
        result = engine.run(phs)
        section = result.stats["coalescing"]
        assert section == {
            "enabled": False,
            "run_length_cap": 1,
            "runs_scheduled": 0,
            "pairs_coalesced": 0,
            "mean_run_length": 0.0,
        }

    def test_run_length_validated(self):
        from repro.errors import EngineError, SimulationError

        prog, _ = pipeline_workload(depth=3, phases=4, seed=1)
        plan = compile_plan(prog)
        with pytest.raises(EngineError, match="run_length"):
            ParallelEngine(plan, num_threads=2, run_length=0)
        with pytest.raises(EngineError, match="run_length"):
            ProcessEngine(prog, num_workers=1, run_length=-2)
        with pytest.raises(SimulationError, match="run_length"):
            SimulatedEngine(prog, num_workers=1, run_length=0)


# ---------------------------------------------------------------------------
# Mid-run fault salvage
# ---------------------------------------------------------------------------


class _BoomMidRun(Vertex):
    def on_execute(self, ctx):
        if ctx.phase == 3:
            raise ValueError("mid-run kaboom")
        return ("ok", ctx.phase)


def _solo_program(behavior):
    g = ComputationGraph("solo")
    g.add_vertex("a")
    return Program(g, {"a": behavior})


class TestMidRunSalvage:
    def test_worker_attributes_failing_phase_and_skips_tail(self):
        # A run [a@1..a@5] with a@3 failing: the reply carries a@1, a@2
        # as survivors, a@3's error (the exact phase — not the run
        # head's), and a@4, a@5 in skipped for coordinator requeue.
        prog = _solo_program(_BoomMidRun())
        pool = ProcessWorkerPool(prog, num_workers=1)
        try:
            pool.start()
            run = RunMsg(
                vertex=1, name="a", successors=(),
                members=tuple(
                    RunMember(phase=p, inputs={}, changed=())
                    for p in range(1, 6)
                ),
            )
            pool.submit_to_worker(0, encode(run), "runs")
            msg = pool.collect(timeout=30.0)
            assert isinstance(msg, ResultBatch)
            assert [r.phase for r in msg.results] == [1, 2, 3]
            assert msg.results[0].error is None
            assert msg.results[1].error is None
            assert "mid-run kaboom" in msg.results[2].error
            assert msg.results[2].phase == 3
            assert msg.skipped == ((1, 4), (1, 5))
        finally:
            pool.terminate()

    def test_engine_surfaces_exact_phase_and_stays_reusable(self):
        prog = _solo_program(_BoomMidRun())
        engine = ProcessEngine(
            prog, num_workers=1, frontier="cone", run_length=None
        )
        with pytest.raises(VertexExecutionError) as exc_info:
            engine.run([PhaseInput(p, float(p)) for p in range(1, 7)])
        assert exc_info.value.vertex == "a"
        assert exc_info.value.phase == 3
        # Survivors committed, claims unwound: the engine still runs.
        res = engine.run([PhaseInput(p, float(p)) for p in (1, 2)])
        assert res.execution_count == 2
