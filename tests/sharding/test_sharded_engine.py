"""Sharded runs vs the single-instance serial oracle.

The acceptance property of the whole layer: for N in {1, 2, 4}, on any
backend, fused or not, a sharded run of a keyed workload produces the
same merged phase outputs and the same final per-key detector state as
one serial instance running everything.  Comparison happens in
timestamp space (phase numbers are shard-local) and final state covers
the stateful ``detect*`` vertices (sources carry RNG objects with no
value equality).
"""

import pytest

from repro.analysis import validate_engine_stats
from repro.core.plan import compile_plan
from repro.core.serial import SerialExecutor
from repro.events import PhaseInput
from repro.models.domains import build_keyed_workload
from repro.sharding import (
    ShardedEngine,
    flatten_entries,
    stream_phases,
)


def oracle_run(wl):
    phases, buf = stream_phases(wl.arrivals, wait=wl.wait, quantum=wl.quantum)
    assert buf.late_count == 0  # the workload's wait guarantees this
    result = SerialExecutor(compile_plan(wl.program, fuse=False)).run(phases)
    detect_state = {
        v: b.snapshot_state()
        for v, b in wl.program.behaviors.items()
        if v.startswith("detect")
    }
    return phases, result, detect_state


def sharded_run(wl, shards, engine, fuse=True, **options):
    eng = ShardedEngine(
        wl.program,
        wl.key_of_source.__getitem__,
        shards,
        engine=engine,
        engine_options=options or None,
        fuse=fuse,
    )
    return eng.run_stream(
        wl.arrivals, wl.key_of_event, wait=wl.wait, quantum=wl.quantum
    )


def assert_oracle_equal(wl, result):
    phases, oracle, detect_state = oracle_run(wl)
    assert result.entries() == flatten_entries(oracle, phases)
    assert result.phases_run == oracle.phases_run
    final = result.final_states()
    for vertex, state in detect_state.items():
        assert final[vertex] == state, vertex
    sharding = result.stats["sharding"]
    assert sum(s["late_events"] for s in sharding["per_shard"]) == 0
    validate_engine_stats(result.engine, result.stats)


class TestOracleEquality:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("engine", ["serial", "parallel"])
    def test_stream_mode_matches_oracle(self, shards, engine):
        wl = build_keyed_workload(num_keys=8, ticks=30, seed=5)
        result = sharded_run(wl, shards, engine, threads=2)
        assert_oracle_equal(wl, result)

    @pytest.mark.parametrize("fuse", [True, False])
    def test_fused_and_unfused_agree(self, fuse):
        wl = build_keyed_workload(num_keys=6, ticks=25, seed=9)
        result = sharded_run(wl, 2, "serial", fuse=fuse)
        assert_oracle_equal(wl, result)

    def test_process_backend(self):
        wl = build_keyed_workload(num_keys=4, ticks=12, seed=2)
        result = sharded_run(wl, 2, "process", workers=2)
        assert_oracle_equal(wl, result)

    def test_simulated_backend(self):
        wl = build_keyed_workload(num_keys=4, ticks=15, seed=4)
        result = sharded_run(wl, 2, "simulated", workers=2)
        assert_oracle_equal(wl, result)

    def test_work_actually_splits(self):
        wl = build_keyed_workload(num_keys=8, ticks=30, seed=5)
        single = sharded_run(wl, 1, "serial")
        split = sharded_run(wl, 4, "serial")
        per_shard = [
            s["executions"]
            for s in split.stats["sharding"]["per_shard"]
        ]
        # A shard runs only the phases its own keys' events seal, so the
        # total can undercut the single instance (which executes every
        # vertex on every global phase) — it must never exceed it.
        assert sum(per_shard) <= single.execution_count
        assert max(per_shard) < single.execution_count
        assert sum(1 for e in per_shard if e) >= 2


class TestStatsSection:
    def test_schema_and_contents(self):
        wl = build_keyed_workload(num_keys=5, ticks=10, seed=1)
        result = sharded_run(wl, 3, "serial")
        s = result.stats["sharding"]
        assert s["num_shards"] == 3
        assert s["mode"] == "stream"
        assert s["keys"] == 5
        assert s["router"] == {"algorithm": "blake2b-64", "num_shards": 3}
        assert len(s["per_shard"]) == 3
        assert [p["shard"] for p in s["per_shard"]] == [0, 1, 2]
        assert sum(p["keys"] for p in s["per_shard"]) == 5
        assert s["merge"]["phases_merged"] == result.phases_run
        assert result.engine == "sharded[n=3,serial]"

    def test_engine_label_carries_backend(self):
        wl = build_keyed_workload(num_keys=3, ticks=8, seed=0)
        result = sharded_run(wl, 2, "parallel", threads=2)
        assert result.engine == "sharded[n=2,parallel]"


class TestBroadcastMode:
    def test_spec_style_phases_match_single_instance(self):
        wl = build_keyed_workload(num_keys=4, ticks=0, seed=0)
        # Broadcast mode: hand-built increasing-timestamp phases whose
        # values name the keyed sources directly.
        sources = sorted(wl.key_of_source)
        phases = [
            PhaseInput(
                p,
                float(p),
                {
                    s: {
                        "account": wl.key_of_source[s],
                        "amount": round(1.0 + 0.1 * p + i, 3),
                    }
                    for i, s in enumerate(sources)
                },
            )
            for p in range(1, 12)
        ]
        oracle = SerialExecutor(
            compile_plan(wl.program, fuse=False)
        ).run(phases)
        engine = ShardedEngine(
            wl.program, wl.key_of_source.__getitem__, 2, engine="serial"
        )
        result = engine.run(phases)
        # Identical phase numbering in broadcast mode: records compare
        # directly, no timestamp detour needed.
        assert result.phases_run == oracle.phases_run
        assert result.records == oracle.records
        assert result.stats["sharding"]["mode"] == "phases"
        validate_engine_stats(result.engine, result.stats)


class TestRoutingErrors:
    def test_unknown_key_arrival_rejected(self):
        from repro.errors import ShardingError

        wl = build_keyed_workload(num_keys=3, ticks=5, seed=0)
        engine = ShardedEngine(
            wl.program, wl.key_of_source.__getitem__, 2
        )
        with pytest.raises(ShardingError, match="unknown key"):
            engine.run_stream(
                wl.arrivals,
                lambda a: "nobody",
                wait=wl.wait,
                quantum=wl.quantum,
            )

    def test_unknown_engine_rejected(self):
        from repro.errors import ShardingError

        wl = build_keyed_workload(num_keys=2, ticks=5, seed=0)
        with pytest.raises(ShardingError, match="unknown shard engine"):
            ShardedEngine(
                wl.program, wl.key_of_source.__getitem__, 2, engine="gpu"
            )


class TestDeterminism:
    def test_same_workload_same_merged_output(self):
        wl1 = build_keyed_workload(num_keys=6, ticks=20, seed=7)
        wl2 = build_keyed_workload(num_keys=6, ticks=20, seed=7)
        r1 = sharded_run(wl1, 3, "serial")
        r2 = sharded_run(wl2, 3, "serial")
        assert r1.entries() == r2.entries()
        assert r1.stats["sharding"] == r2.stats["sharding"]

    def test_shard_layout_independent_of_key_insertion_order(self):
        wl = build_keyed_workload(num_keys=6, ticks=10, seed=3)
        plan_a = ShardedEngine(
            wl.program, wl.key_of_source.__getitem__, 3
        ).plan
        plan_b = ShardedEngine(
            wl.program, wl.key_of_source.__getitem__, 3
        ).plan
        assert plan_a.assignment == plan_b.assignment
        assert plan_a.shard_keys == plan_b.shard_keys
