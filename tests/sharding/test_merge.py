"""Tests for the watermark-aligned merge stage.

The property that matters: the merged sequence is **skew-independent** —
however shard offer/advance calls interleave (one shard racing ahead,
round-robin, one shard entirely drained first), the emitted phases are
identical.  Plus the contracts that make that argument sound.
"""

import itertools

import pytest

from repro.errors import ShardingError
from repro.sharding import MergedPhase, WatermarkMerger


def drive(num_shards, script):
    """Run a list of ("offer", shard, ts, entries) / ("advance", shard, w)
    steps and return the concatenated emissions plus finish()."""
    merger = WatermarkMerger(num_shards)
    out = []
    for step in script:
        if step[0] == "offer":
            _, shard, ts, entries = step
            out.extend(merger.offer(shard, ts, entries))
        else:
            _, shard, w = step
            out.extend(merger.advance(shard, w))
    out.extend(merger.finish())
    return out, merger


class TestAlignment:
    def test_holds_until_every_shard_passes(self):
        merger = WatermarkMerger(2)
        # Shard 0 offers ts 1 and 2: nothing can emit — shard 1's
        # watermark is still -inf, it might offer ts 0.5.
        assert merger.offer(0, 1.0, [("a", "x")]) == []
        assert merger.offer(0, 2.0, [("a", "y")]) == []
        # Shard 1 reaching ts 2 releases everything strictly below 2.
        released = merger.offer(1, 2.0, [("b", "z")])
        assert [(m.timestamp, m.entries) for m in released] == [
            (1.0, (("a", "x"),))
        ]
        # ts 2.0 itself emits only on finish (watermark == 2, not past).
        tail = merger.finish()
        assert [(m.timestamp, m.entries) for m in tail] == [
            (2.0, (("a", "y"), ("b", "z")))
        ]

    def test_entries_sorted_by_vertex_stable_within(self):
        merger = WatermarkMerger(2)
        merger.offer(1, 1.0, [("z", 1), ("a", 2)])
        merger.offer(0, 1.0, [("m", 3), ("m", 4)])
        (m,) = merger.finish()
        assert m.entries == (("a", 2), ("m", 3), ("m", 4), ("z", 1))

    def test_phase_numbers_sequential(self):
        out, _ = drive(1, [("offer", 0, float(t), [("v", t)]) for t in range(5)])
        assert [m.phase for m in out] == [1, 2, 3, 4, 5]

    def test_empty_entries_still_emit_a_phase(self):
        out, _ = drive(1, [("offer", 0, 1.0, [])])
        assert [(m.timestamp, m.entries) for m in out] == [(1.0, ())]

    def test_advance_alone_emits_buffered(self):
        merger = WatermarkMerger(2)
        merger.offer(0, 3.0, [("a", 1)])
        assert merger.advance(1, 2.0) == []
        # Shard 0's own watermark is only 3.0 (== the offer), so even
        # with shard 1 far ahead ts 3.0 is not strictly below the min.
        assert merger.advance(1, 5.0) == []
        released = merger.advance(0, 3.5)
        assert [m.timestamp for m in released] == [3.0]


class TestSkewIndependence:
    def test_all_interleavings_agree(self):
        # Two shards, two phases each; permute every order of the four
        # offers that keeps each shard's own offers increasing.
        offers = {
            0: [("offer", 0, 1.0, [("a", "a1")]),
                ("offer", 0, 3.0, [("a", "a3")])],
            1: [("offer", 1, 2.0, [("b", "b2")]),
                ("offer", 1, 4.0, [("b", "b4")])],
        }
        outcomes = set()
        for perm in itertools.permutations(offers[0] + offers[1]):
            per_shard = {0: [], 1: []}
            for step in perm:
                per_shard[step[1]].append(step[2])
            if any(ts != sorted(ts) for ts in per_shard.values()):
                continue  # would violate the per-shard ordering contract
            out, _ = drive(2, list(perm))
            outcomes.add(tuple((m.phase, m.timestamp, m.entries) for m in out))
        assert len(outcomes) == 1
        (only,) = outcomes
        assert [o[1] for o in only] == [1.0, 2.0, 3.0, 4.0]

    def test_one_shard_far_ahead_buffers_not_drops(self):
        merger = WatermarkMerger(2)
        for t in range(1, 50):
            merger.offer(0, float(t), [("a", t)])
        assert merger.merged_count == 0
        assert merger.max_buffered == 49
        out = merger.offer(1, 25.0, [("b", 25)])
        assert [m.timestamp for m in out] == [float(t) for t in range(1, 25)]
        out = merger.finish()
        assert [m.timestamp for m in out] == [float(t) for t in range(25, 50)]
        assert merger.merged_count == 49


class TestContracts:
    def test_offers_must_strictly_increase_per_shard(self):
        merger = WatermarkMerger(2)
        merger.offer(0, 2.0, [])
        with pytest.raises(ShardingError, match="strictly increase"):
            merger.offer(0, 2.0, [])
        with pytest.raises(ShardingError, match="strictly increase"):
            merger.offer(0, 1.0, [])

    def test_offer_below_declared_watermark_rejected(self):
        merger = WatermarkMerger(2)
        merger.advance(0, 5.0)
        with pytest.raises(ShardingError, match="below its declared watermark"):
            merger.offer(0, 3.0, [])

    def test_offer_exactly_at_watermark_allowed(self):
        # advance(w) promises no offers *below* w; an offer at exactly w
        # is legal (the ReorderBuffer seals strictly below).
        merger = WatermarkMerger(1)
        merger.advance(0, 5.0)
        out = merger.offer(0, 5.0, [("v", 1)])
        assert out == []  # own watermark == 5.0, not past it

    def test_offer_for_emitted_timestamp_rejected(self):
        # Emission requires every watermark to pass ts, so a straggler
        # offer for an emitted timestamp is necessarily below its own
        # shard's declared watermark: rejected, never silently merged.
        merger = WatermarkMerger(2)
        merger.offer(0, 1.0, [("a", 1)])
        merger.advance(0, 10.0)
        merger.advance(1, 10.0)  # emits ts 1.0
        assert merger.merged_count == 1
        with pytest.raises(ShardingError):
            merger.offer(1, 1.0, [("b", 2)])

    def test_shard_out_of_range(self):
        merger = WatermarkMerger(2)
        with pytest.raises(ShardingError, match="out of range"):
            merger.offer(2, 1.0, [])
        with pytest.raises(ShardingError, match="out of range"):
            merger.advance(-1, 1.0)

    def test_invalid_shard_count(self):
        with pytest.raises(ShardingError):
            WatermarkMerger(0)

    def test_watermark_never_regresses(self):
        merger = WatermarkMerger(1)
        merger.advance(0, 10.0)
        merger.advance(0, 3.0)  # ignored, not an error
        merger.offer(0, 10.0, [("v", 1)])
        with pytest.raises(ShardingError):
            merger.offer(0, 4.0, [])

    def test_stats(self):
        out, merger = drive(
            2,
            [("offer", 0, 1.0, [("a", 1)]), ("offer", 0, 2.0, [("a", 2)]),
             ("offer", 1, 1.5, [("b", 1)])],
        )
        assert merger.stats() == {"phases_merged": 3, "max_buffered": 3}


class TestMergedPhase:
    def test_frozen(self):
        m = MergedPhase(1, 0.0, ())
        with pytest.raises(AttributeError):
            m.phase = 2
