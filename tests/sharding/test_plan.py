"""Tests for key propagation and the per-shard replica split."""

import pytest

from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import FunctionVertex, PassthroughSource
from repro.errors import ShardingError
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph
from repro.sharding import (
    KeyRouter,
    key_by_bracket,
    key_by_source,
    split_by_key,
)


def keyed_chain_program(keys):
    """One src[k] -> out[k] chain per key."""
    edges = [(f"src[{k}]", f"out[{k}]") for k in keys]
    g = ComputationGraph.from_edges(edges)
    behaviors = {}
    for k in keys:
        behaviors[f"src[{k}]"] = PassthroughSource()
        behaviors[f"out[{k}]"] = FunctionVertex(
            lambda ctx, k=k: ctx.input(f"src[{k}]")
        )
    return Program(g, behaviors, name="keyed-chains")


class TestKeyExtractors:
    def test_key_by_source_is_identity(self):
        assert key_by_source("txn[a3]") == "txn[a3]"

    def test_key_by_bracket(self):
        assert key_by_bracket("txn[a3]") == "a3"
        assert key_by_bracket("pos[s1]") == "s1"
        assert key_by_bracket("nobracket") == "nobracket"
        assert key_by_bracket("weird]") == "weird]"
        assert key_by_bracket("multi[a][b]") == "a][b"


class TestSplitByKey:
    def test_shards_partition_the_vertices(self):
        prog = keyed_chain_program([f"k{i}" for i in range(10)])
        plan = split_by_key(prog, key_by_bracket, 3)
        all_vertices = []
        for sub in plan.programs:
            if sub is not None:
                all_vertices.extend(sub.graph.vertices())
        assert sorted(all_vertices) == sorted(prog.graph.vertices())
        assert plan.num_shards == 3
        assert len(plan.keys) == 10

    def test_chain_stays_whole_on_its_shard(self):
        prog = keyed_chain_program(["a", "b", "c", "d"])
        plan = split_by_key(prog, key_by_bracket, 2)
        for key, shard in plan.assignment.items():
            sub = plan.programs[shard]
            assert f"src[{key}]" in sub.graph.vertices()
            assert f"out[{key}]" in sub.graph.vertices()

    def test_behaviors_are_deep_copies(self):
        prog = keyed_chain_program(["a", "b"])
        plan = split_by_key(prog, key_by_bracket, 1)
        sub = plan.programs[0]
        for name in sub.behaviors:
            assert sub.behaviors[name] is not prog.behaviors[name]
        # Running the replica must not mutate the original's behaviours:
        # the original program stays usable as the oracle.
        SerialExecutor(sub).run([PhaseInput(1, 1.0, {"src[a]": 1})])

    def test_cross_key_vertex_rejected_with_names(self):
        g = ComputationGraph.from_edges(
            [("src[a]", "join"), ("src[b]", "join")]
        )
        prog = Program(
            g,
            {
                "src[a]": PassthroughSource(),
                "src[b]": PassthroughSource(),
                "join": FunctionVertex(lambda c: None),
            },
        )
        with pytest.raises(ShardingError, match="not key-separable") as ei:
            split_by_key(prog, key_by_bracket, 2)
        assert "join" in str(ei.value)

    def test_key_by_source_always_separates_trees(self):
        # Under key_by_source the cross-key join is *also* rejected,
        # since the two sources are distinct keys.
        g = ComputationGraph.from_edges(
            [("sa", "join"), ("sb", "join")]
        )
        prog = Program(
            g,
            {
                "sa": PassthroughSource(),
                "sb": PassthroughSource(),
                "join": FunctionVertex(lambda c: None),
            },
        )
        with pytest.raises(ShardingError):
            split_by_key(prog, key_by_source, 2)

    def test_shared_key_join_allowed(self):
        # Two sources with the SAME key may feed one correlator.
        g = ComputationGraph.from_edges(
            [("pos[s1]", "fuse[s1]"), ("rfid[s1]", "fuse[s1]")]
        )
        prog = Program(
            g,
            {
                "pos[s1]": PassthroughSource(),
                "rfid[s1]": PassthroughSource(),
                "fuse[s1]": FunctionVertex(lambda c: None),
            },
        )
        plan = split_by_key(prog, key_by_bracket, 2)
        assert plan.keys == ("s1",)

    def test_empty_shards_are_none(self):
        prog = keyed_chain_program(["only"])
        plan = split_by_key(prog, key_by_bracket, 4)
        non_empty = [p for p in plan.programs if p is not None]
        assert len(non_empty) == 1
        owner = plan.assignment["only"]
        assert plan.programs[owner] is not None
        assert plan.shard_keys[owner] == ("only",)

    def test_mismatched_router_rejected(self):
        prog = keyed_chain_program(["a"])
        with pytest.raises(ShardingError, match="router was built for"):
            split_by_key(prog, key_by_bracket, 2, router=KeyRouter(3))

    def test_unroutable_key_type_fails_fast(self):
        prog = keyed_chain_program(["a"])
        with pytest.raises(ShardingError, match="unroutable"):
            split_by_key(prog, lambda s: ["list", "key"], 2)

    def test_describe(self):
        prog = keyed_chain_program(["a", "b", "c"])
        plan = split_by_key(prog, key_by_bracket, 2)
        d = plan.describe()
        assert d["num_shards"] == 2
        assert d["keys"] == 3
        assert sum(d["shard_vertices"]) == 6

    def test_shard_of_vertex(self):
        prog = keyed_chain_program(["a", "b"])
        plan = split_by_key(prog, key_by_bracket, 2)
        mapping = plan.shard_of_vertex
        for k in ("a", "b"):
            assert mapping[f"src[{k}]"] == plan.assignment[k]
            assert mapping[f"out[{k}]"] == plan.assignment[k]
