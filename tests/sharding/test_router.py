"""Tests for the stable key router.

The load-bearing property is *process independence*: the key -> shard
map must be a pure function of the key's value, because shard layouts
computed in the coordinator, in spawn-started workers, and in a rerun
next week all have to agree.  Builtin ``hash()`` fails this for strings
(``PYTHONHASHSEED`` salting); the subprocess test below pins the
regression.
"""

import subprocess
import sys

import pytest

from repro.errors import ShardingError
from repro.sharding import KeyRouter, canonical_key_bytes, stable_key_hash


class TestCanonicalKeyBytes:
    def test_distinct_types_encode_distinctly(self):
        # 1, True, 1.0 and "1" all hash equal under builtin hash();
        # canonical encoding must keep them apart.
        encodings = [
            canonical_key_bytes(k) for k in (1, True, 1.0, "1", b"1", None)
        ]
        assert len(set(encodings)) == len(encodings)

    def test_length_prefix_prevents_concat_collisions(self):
        assert canonical_key_bytes(("ab", "c")) != canonical_key_bytes(
            ("a", "bc")
        )
        assert canonical_key_bytes(("a", "")) != canonical_key_bytes(("a",))

    def test_nested_tuples(self):
        assert canonical_key_bytes((("a",), "b")) != canonical_key_bytes(
            ("a", ("b",))
        )

    def test_unsupported_type_rejected(self):
        with pytest.raises(ShardingError, match="unroutable key type"):
            canonical_key_bytes(["no", "lists"])
        with pytest.raises(ShardingError):
            canonical_key_bytes({"no": "dicts"})

    def test_unsupported_inside_tuple_rejected(self):
        with pytest.raises(ShardingError):
            canonical_key_bytes(("ok", ["not ok"]))


class TestStableKeyHash:
    # Pinned values: these must never change, or every persisted shard
    # assignment (failure artifacts, cross-process layouts) breaks.
    PINNED = {
        "acct00": 0xDF044831C06266C2,
        "acct01": 0xD8C87F982BFD163B,
        "": 0x250A665CA99DB8F4,
    }

    def test_pinned_values(self):
        for key, expect in self.PINNED.items():
            assert stable_key_hash(key) == expect, key

    def test_64_bit_range(self):
        for key in ("a", "b", 17, None, ("x", 2)):
            assert 0 <= stable_key_hash(key) < 2**64

    def test_independent_of_pythonhashseed(self):
        """The regression builtin hash() fails: rerun the hash in
        subprocesses with different PYTHONHASHSEED values and require
        identical results (builtin hash('acct00') % 4 would differ)."""
        import os

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        code = (
            "import sys; sys.path.insert(0, {src!r});"
            "from repro.sharding import stable_key_hash;"
            "print(stable_key_hash('acct00'), hash('acct00'))"
        ).format(src=src)
        outs = []
        builtin = []
        for seed in ("0", "1", "424242"):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            stable, raw = proc.stdout.split()
            outs.append(stable)
            builtin.append(raw)
        assert len(set(outs)) == 1
        # And the salt really does move builtin hash() around — the
        # failure mode this module exists to rule out is live.
        assert len(set(builtin)) > 1


class TestKeyRouter:
    def test_pinned_assignment(self):
        # The concrete layout fuzz artifacts and stats reports embed.
        router = KeyRouter(4)
        keys = [f"acct{i:02d}" for i in range(8)]
        assert router.assign(keys) == {
            k: stable_key_hash(k) % 4 for k in keys
        }

    def test_partition_covers_all_keys_once(self):
        router = KeyRouter(3)
        keys = [f"k{i}" for i in range(20)]
        groups = router.partition(keys)
        assert len(groups) == 3
        flat = [k for g in groups for k in g]
        assert sorted(flat) == sorted(keys)
        for g in groups:
            assert g == [k for k in keys if k in g]  # input order kept

    def test_single_shard_takes_everything(self):
        router = KeyRouter(1)
        assert all(router.shard_of(k) == 0 for k in ("a", "b", 1, None))

    def test_invalid_shard_count(self):
        with pytest.raises(ShardingError):
            KeyRouter(0)

    def test_describe(self):
        assert KeyRouter(5).describe() == {
            "algorithm": "blake2b-64",
            "num_shards": 5,
        }
