"""Tests for the reproduction-report generator and its CLI command."""

from pathlib import Path

from repro.cli import main
from repro.report import generate_report


class TestGenerateReport:
    def test_quick_report_all_reproduced(self):
        text = generate_report(quick=True)
        assert text.count("**REPRODUCED**") == 4
        assert "DIVERGED" not in text
        assert "[3, 3, 4, 5, 5, 6, 7, 7]" in text
        assert "8/8 steps" in text

    def test_sections_present(self):
        text = generate_report(quick=True)
        for heading in (
            "## Figure 1",
            "## Figure 2",
            "## Figure 3",
            "## Section 4",
        ):
            assert heading in text


class TestReportCommand:
    def test_stdout(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out

    def test_file_output(self, tmp_path: Path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--quick", "-o", str(target)]) == 0
        assert target.exists()
        assert "REPRODUCED" in target.read_text()
        assert "written to" in capsys.readouterr().out
