"""Tracing inside the simulated cluster: cross-machine pipelining must be
observable — machine 1 executing phase p while machine 0 is on p+k."""

import pytest

from repro.core.tracer import ExecutionTracer
from repro.distributed import (
    MachineConfig,
    PartitionedProgram,
    SimulatedCluster,
    contiguous_partition,
)
from repro.errors import WorkloadError
from repro.simulator.costs import CostModel
from repro.streams.workloads import pipeline_workload


def traced_cluster(machines: int = 3):
    prog, phases = pipeline_workload(depth=9, phases=25, seed=3)
    pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, machines))
    tracers = [ExecutionTracer() for _ in range(machines)]
    result = SimulatedCluster(
        pp,
        MachineConfig(num_workers=2, num_processors=2),
        cost_model=CostModel(compute_cost=1.0, bookkeeping_cost=0.01),
        network_latency=0.2,
        tracers=tracers,
    ).run(phases)
    return result, tracers


class TestClusterTracing:
    def test_every_machine_traces_executions(self):
        _result, tracers = traced_cluster()
        for tr in tracers:
            assert tr.intervals(), "each machine executed and traced work"

    def test_cross_machine_phase_skew(self):
        """At some virtual instant, machine 0 works on a strictly later
        phase than machine 2 — the cluster-level pipeline."""
        _result, tracers = traced_cluster()
        head = tracers[0].intervals()
        tail = tracers[-1].intervals()
        skewed = False
        for b0, e0, (_v0, p0) in head:
            for b2, e2, (_v2, p2) in tail:
                if max(b0, b2) < min(e0, e2) and p0 > p2:
                    skewed = True
                    break
            if skewed:
                break
        assert skewed

    def test_downstream_phases_start_after_upstream_completion(self):
        """Machine m+1 cannot start phase p before machine m completed it
        (plus the network latency)."""
        _result, tracers = traced_cluster()
        for up, down in zip(tracers, tracers[1:]):
            completed = {
                ev.pair[1]: ev.time
                for ev in up.events
                if ev.kind == "phase_completed"
            }
            started = {
                ev.pair[1]: ev.time
                for ev in down.events
                if ev.kind == "phase_started"
            }
            for p, t_start in started.items():
                assert t_start >= completed[p] + 0.2 - 1e-9

    def test_tracer_count_validated(self):
        prog, phases = pipeline_workload(depth=4, phases=2)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 2))
        with pytest.raises(WorkloadError, match="tracers"):
            SimulatedCluster(pp, tracers=[ExecutionTracer()])
