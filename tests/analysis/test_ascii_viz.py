"""Tests for ASCII rendering of graphs and Figure-3 frames."""

from repro.analysis.ascii_viz import GLYPHS, render_frames, render_graph, render_snapshot
from repro.core.tracer import SetSnapshot
from repro.graph.generators import fig3_graph
from repro.graph.numbering import number_graph


class TestRenderGraph:
    def test_levels_and_edges_present(self):
        g = fig3_graph()
        text = render_graph(g)
        assert "level 0: v1  v2" in text
        assert "v1->v3" in text
        assert "6 vertices" in text

    def test_with_numbering_labels(self):
        g = fig3_graph()
        nb = number_graph(g)
        text = render_graph(g, nb)
        assert "1:v1" in text
        assert "3:v3->5:v5" in text


class TestRenderSnapshot:
    def snapshot(self) -> SetSnapshot:
        return SetSnapshot(
            label="(b) (1,1) executed",
            partial=frozenset({(3, 1)}),
            full=frozenset({(2, 1)}),
            ready=frozenset({(2, 1)}),
        )

    def test_glyphs(self):
        text = render_snapshot(self.snapshot(), n=6, phases=[1])
        assert "3:P" in text  # partial
        assert "2:R" in text  # full+ready
        assert "1:." in text  # no set

    def test_full_without_ready_glyph(self):
        snap = SetSnapshot(
            label="x",
            partial=frozenset(),
            full=frozenset({(4, 1)}),
            ready=frozenset(),
        )
        text = render_snapshot(snap, n=6, phases=[1])
        assert "4:F" in text

    def test_multiple_phases_rendered(self):
        text = render_snapshot(self.snapshot(), n=6, phases=[1, 2])
        assert "phase 1" in text and "phase 2" in text

    def test_render_frames_includes_legend(self):
        text = render_frames([self.snapshot()], n=6, phases=[1])
        assert "legend" in text
        assert "(b) (1,1) executed" in text

    def test_glyph_table_complete(self):
        assert set(GLYPHS) == {"none", "partial", "full", "ready"}
