"""Tests for the ASCII timeline renderer and JSON result export."""

import pytest

from repro.analysis.export import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.analysis.timeline import render_timeline, worker_utilization
from repro.core.program import RunResult
from repro.core.serial import SerialExecutor
from repro.core.tracer import ExecutionTracer
from repro.errors import ReproError
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.streams.workloads import fig1_workload, grid_workload


def traced_run():
    prog, phases = fig1_workload(phases=12)
    tracer = ExecutionTracer()
    SimulatedEngine(
        prog,
        num_workers=4,
        num_processors=4,
        cost_model=CostModel(compute_cost=1.0, bookkeeping_cost=0.01),
        tracer=tracer,
    ).run(phases)
    return tracer


class TestTimeline:
    def test_renders_lanes_and_digits(self):
        tracer = traced_run()
        text = render_timeline(tracer, width=60)
        lines = text.splitlines()
        assert lines[0].startswith("t=")
        assert sum(1 for line in lines if line.lstrip().startswith("w")) == 4
        # Phase digits appear in the lanes.
        assert any(ch.isdigit() for line in lines[1:] for ch in line[5:])

    def test_pipelining_visible(self):
        """Some time column holds two different phase digits across lanes —
        Figure 1's concurrent phases, in ASCII."""
        tracer = traced_run()
        text = render_timeline(tracer, width=72)
        lanes = [line.split("|", 1)[1] for line in text.splitlines()[1:]]
        overlap = False
        for col in range(min(len(l) for l in lanes)):
            digits = {l[col] for l in lanes if l[col] != " "}
            if len(digits) > 1:
                overlap = True
                break
        assert overlap

    def test_empty_trace(self):
        assert "no execution intervals" in render_timeline(ExecutionTracer())

    def test_max_workers_cap(self):
        tracer = traced_run()
        text = render_timeline(tracer, max_workers=2)
        assert "more workers" in text

    def test_worker_utilization(self):
        tracer = traced_run()
        util = worker_utilization(tracer)
        assert set(util) == {0, 1, 2, 3}
        assert all(0.0 < u <= 1.0 for u in util.values())


class TestExport:
    def make_result(self) -> RunResult:
        prog, phases = grid_workload(3, 3, phases=8, seed=3)
        return SerialExecutor(prog).run(phases)

    def test_round_trip_dict(self):
        res = self.make_result()
        back = result_from_dict(result_to_dict(res))
        assert back.records == res.records
        assert back.executions == res.executions
        assert back.message_count == res.message_count
        assert back.engine == res.engine

    def test_round_trip_file(self, tmp_path):
        res = self.make_result()
        path = tmp_path / "run.json"
        save_result(res, path)
        back = load_result(path)
        assert back.records == res.records
        assert back.wall_time == res.wall_time

    def test_tuple_payloads_round_trip(self):
        res = RunResult(
            engine="x",
            records={"sink": [(1, ("anomaly", 3, 2.5)), (2, {"k": (1, 2)})]},
            executions=[(1, 1)],
            message_count=1,
            phases_run=2,
        )
        back = result_from_dict(result_to_dict(res))
        assert back.records["sink"][0][1] == ("anomaly", 3, 2.5)
        assert back.records["sink"][1][1] == {"k": (1, 2)}

    def test_unencodable_record_rejected(self):
        res = RunResult(
            engine="x",
            records={"sink": [(1, object())]},
            executions=[],
            message_count=0,
            phases_run=1,
        )
        with pytest.raises(ReproError, match="cannot JSON-encode"):
            result_to_dict(res)

    def test_unencodable_stats_stringified(self):
        res = RunResult(
            engine="x",
            records={},
            executions=[],
            message_count=0,
            phases_run=0,
            stats={"weird": object()},
        )
        data = result_to_dict(res)
        assert isinstance(data["stats"]["weird"], str)

    def test_bad_format_version(self):
        res = self.make_result()
        data = result_to_dict(res)
        data["format"] = 99
        with pytest.raises(ReproError, match="format"):
            result_from_dict(data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_result(tmp_path / "nope.json")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="malformed"):
            load_result(path)
