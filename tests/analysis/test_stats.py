"""Tests for statistics helpers and table formatting."""

from repro.analysis.stats import format_table, message_rate_summary, summarize_speedup
from repro.core.program import RunResult


def rr(engine: str, wall: float, messages: int = 0, executions: int = 0) -> RunResult:
    return RunResult(
        engine=engine,
        records={},
        executions=[(1, p) for p in range(1, executions + 1)],
        message_count=messages,
        phases_run=1,
        wall_time=wall,
    )


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "1.235" in table
        assert "2.000" in table

    def test_column_width_adapts(self):
        table = format_table(["h"], [["wiiiiiiide"]])
        header, rule, row = table.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_precision_override(self):
        table = format_table(["x"], [[3.14159]], float_precision=1)
        assert "3.1" in table

    def test_ints_and_strings_passthrough(self):
        table = format_table(["a", "b"], [[7, "seven"]])
        assert "7" in table and "seven" in table


class TestSpeedupSummary:
    def test_baseline_first(self):
        summary = summarize_speedup([rr("k1", 10.0), rr("k2", 5.0), rr("k4", 2.5)])
        speeds = [r["speedup"] for r in summary["runs"]]
        assert speeds == [1.0, 2.0, 4.0]
        assert summary["peak_speedup"] == 4.0
        assert summary["baseline"] == "k1"

    def test_empty(self):
        assert summarize_speedup([])["runs"] == []


class TestMessageRateSummary:
    def test_ratios(self):
        delta = rr("delta", 1.0, messages=10, executions=20)
        dense = rr("dense", 1.0, messages=1000, executions=200)
        summary = message_rate_summary(delta, dense, phases=100)
        assert summary["message_ratio"] == 100.0
        assert summary["execution_ratio"] == 10.0
        assert summary["delta_messages_per_phase"] == 0.1
        assert summary["dense_messages_per_phase"] == 10.0

    def test_zero_delta_messages(self):
        delta = rr("delta", 1.0, messages=0, executions=1)
        dense = rr("dense", 1.0, messages=10, executions=10)
        summary = message_rate_summary(delta, dense, phases=10)
        assert summary["message_ratio"] == float("inf")
