"""Tests for the serializability checker."""

import pytest

from repro.analysis.serializability import (
    SerializabilityReport,
    assert_serializable,
    check_serializable,
)
from repro.core.program import RunResult
from repro.errors import SerializabilityError


def result(**overrides) -> RunResult:
    base = dict(
        engine="x",
        records={"sink": [(1, 10), (2, 20)]},
        executions=[(1, 1), (2, 1), (1, 2), (2, 2)],
        message_count=4,
        phases_run=2,
    )
    base.update(overrides)
    return RunResult(**base)


class TestCheck:
    def test_identical_results_equivalent(self):
        report = check_serializable(result(), result(engine="y"))
        assert report.equivalent
        assert bool(report)
        assert "serializable" in str(report)

    def test_differing_records_detected(self):
        bad = result(records={"sink": [(1, 10), (2, 99)]})
        report = check_serializable(result(), bad)
        assert not report.equivalent
        assert any("records['sink'][1]" in d for d in report.differences)

    def test_missing_record_vertex_detected(self):
        bad = result(records={})
        report = check_serializable(result(), bad)
        assert not report.equivalent

    def test_record_length_mismatch(self):
        bad = result(records={"sink": [(1, 10)]})
        report = check_serializable(result(), bad)
        assert any("lengths differ" in d for d in report.differences)

    def test_missing_execution_detected(self):
        bad = result(executions=[(1, 1), (2, 1), (1, 2)])
        report = check_serializable(result(), bad)
        assert any("not executed by candidate" in d for d in report.differences)

    def test_extra_execution_detected(self):
        bad = result(executions=[(1, 1), (2, 1), (1, 2), (2, 2), (3, 1)])
        report = check_serializable(result(), bad)
        assert any("only by candidate" in d for d in report.differences)

    def test_duplicate_execution_detected(self):
        bad = result(executions=[(1, 1), (1, 1), (2, 1), (1, 2), (2, 2)])
        report = check_serializable(result(), bad)
        assert any("more than once" in d for d in report.differences)

    def test_message_count_mismatch(self):
        bad = result(message_count=7)
        report = check_serializable(result(), bad)
        assert any("message counts" in d for d in report.differences)

    def test_phase_count_mismatch(self):
        bad = result(phases_run=3)
        report = check_serializable(result(), bad)
        assert any("phase counts" in d for d in report.differences)

    def test_difference_cap(self):
        bad = result(
            records={f"v{i}": [(1, i)] for i in range(20)},
        )
        ref = result(records={f"v{i}": [(1, i + 1)] for i in range(20)})
        report = check_serializable(ref, bad, max_differences=3)
        assert any("suppressed" in d for d in report.differences)


class TestAssert:
    def test_passes_silently(self):
        assert_serializable(result(), result())

    def test_raises_with_report(self):
        bad = result(message_count=9)
        with pytest.raises(SerializabilityError, match="DIVERGES"):
            assert_serializable(result(), bad)
