"""Stats-schema regression tests.

``repro run --stats-json`` output must validate against the documented
schema (:mod:`repro.analysis.stats`) for every engine — in particular the
``frontier`` section every scheduling engine now reports — in both
frontier modes.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.stats import (
    validate_coalescing_stats,
    validate_engine_stats,
    validate_frontier_stats,
    validate_sharding_stats,
)
from repro.cli import main

SPEC = """
<computation name="stats-demo">
  <graph>
    <vertex id="sensor" class="RandomWalkSensor">
      <param name="seed" value="1" type="int"/>
    </vertex>
    <vertex id="avg" class="MovingAverage">
      <param name="window" value="3" type="int"/>
    </vertex>
    <vertex id="out" class="Recorder"/>
    <edge from="sensor" to="avg"/>
    <edge from="avg" to="out"/>
  </graph>
  <simulation timesteps="8" interval="1.0" seed="5"/>
</computation>
"""


@pytest.fixture
def spec_file(tmp_path: Path) -> str:
    path = tmp_path / "demo.xml"
    path.write_text(SPEC)
    return str(path)


class TestStatsJsonSchema:
    @pytest.mark.parametrize(
        "engine", ["serial", "parallel", "process", "simulated"]
    )
    @pytest.mark.parametrize("frontier", ["global", "cone"])
    def test_every_engine_validates(self, spec_file, tmp_path, engine,
                                    frontier):
        out_path = tmp_path / f"{engine}-{frontier}.json"
        assert main([
            "run", spec_file, "--engine", engine, "--no-fuse",
            "--frontier", frontier, "--stats-json", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        errors = validate_engine_stats(payload["engine"], payload["stats"])
        assert not errors, errors
        if engine == "serial":
            assert payload["stats"] == {}
        else:
            section = payload["stats"]["frontier"]
            assert section["mode"] == frontier
            assert section["cone_count"] == 3  # a 3-vertex chain

    def test_threaded_stats_report_requested_mode(self, spec_file, tmp_path):
        out_path = tmp_path / "t.json"
        assert main([
            "run", spec_file, "--engine", "parallel", "--threads", "2",
            "--stats-json", str(out_path),
        ]) == 0  # default --frontier is cone
        payload = json.loads(out_path.read_text())
        assert payload["stats"]["frontier"]["mode"] == "cone"


class TestValidatorUnit:
    def test_accepts_valid_section(self):
        assert validate_frontier_stats({
            "mode": "cone",
            "cone_count": 4,
            "max_phase_skew": 2,
            "frontier_advances": 17,
        }) == []

    def test_rejects_bad_mode_and_types(self):
        errors = validate_frontier_stats({
            "mode": "both",
            "cone_count": 0,
            "max_phase_skew": True,
            "frontier_advances": "many",
        })
        assert len(errors) == 4

    def test_rejects_unknown_keys_and_missing(self):
        errors = validate_frontier_stats({"mode": "global", "extra": 1})
        assert any("unexpected keys" in e for e in errors)
        assert any("cone_count" in e for e in errors)

    def test_engine_dispatch(self):
        assert validate_engine_stats("serial", {}) == []
        assert validate_engine_stats("serial", {"frontier": {}}) != []
        assert validate_engine_stats("parallel[k=2]", {}) != []
        good = {
            "frontier": {
                "mode": "global",
                "cone_count": 1,
                "max_phase_skew": 0,
                "frontier_advances": 0,
            },
            "suppression": {
                "enabled": False,
                "suppressed_messages": 0,
                "elided_executions": 0,
                "ineligible_vertices": 0,
            },
            "coalescing": {
                "enabled": False,
                "run_length_cap": 1,
                "runs_scheduled": 0,
                "pairs_coalesced": 0,
                "mean_run_length": 0.0,
            },
        }
        for engine in ("parallel[k=2]", "process[w=2]", "simulated[k=2,P=2]"):
            assert validate_engine_stats(engine, good) == []
        # Scheduling engines must report the suppression and coalescing
        # sections.
        missing = {"frontier": dict(good["frontier"])}
        errors = validate_engine_stats("parallel[k=2]", missing)
        assert any("suppression" in e for e in errors)
        assert any("coalescing" in e for e in errors)

    def test_non_mapping_stats(self):
        assert validate_engine_stats("parallel[k=1]", None) != []
        assert validate_frontier_stats(7) != []


def _good_coalescing_section():
    return {
        "enabled": True,
        "run_length_cap": None,
        "runs_scheduled": 10,
        "pairs_coalesced": 30,
        "mean_run_length": 4.0,
    }


class TestCoalescingValidator:
    def test_accepts_valid_sections(self):
        assert validate_coalescing_stats(_good_coalescing_section()) == []
        assert validate_coalescing_stats({
            "enabled": False,
            "run_length_cap": 1,
            "runs_scheduled": 0,
            "pairs_coalesced": 0,
            "mean_run_length": 0.0,
        }) == []

    def test_rejects_bad_types(self):
        errors = validate_coalescing_stats({
            "enabled": "yes",
            "run_length_cap": 0,
            "runs_scheduled": True,
            "pairs_coalesced": -1,
            "mean_run_length": "many",
        })
        assert len(errors) == 5

    def test_rejects_inconsistent_mean(self):
        section = _good_coalescing_section()
        section["mean_run_length"] = 2.5  # should be 40/10
        errors = validate_coalescing_stats(section)
        assert any("mean_run_length" in e for e in errors)

    def test_disabled_implies_no_runs(self):
        # The run-length-1 dispatch paths never enter claim_run, so a
        # disabled run reporting scheduled runs is a scheduler bug.
        section = _good_coalescing_section()
        section["enabled"] = False
        section["run_length_cap"] = 1
        errors = validate_coalescing_stats(section)
        assert any("runs_scheduled" in e for e in errors)
        assert any("pairs_coalesced" in e for e in errors)

    def test_rejects_unknown_keys(self):
        section = _good_coalescing_section()
        section["bonus"] = 1
        assert any(
            "unexpected keys" in e
            for e in validate_coalescing_stats(section)
        )


def _good_sharding_section(num_shards=2):
    return {
        "num_shards": num_shards,
        "mode": "stream",
        "keys": 4,
        "router": {"algorithm": "blake2b-64", "num_shards": num_shards},
        "per_shard": [
            {
                "shard": i,
                "keys": 2,
                "vertices": 6,
                "phases": 10,
                "executions": 60,
                "messages": 30,
                "late_events": 0,
            }
            for i in range(num_shards)
        ],
        "merge": {"phases_merged": 10, "max_buffered": 3},
    }


class TestShardingValidator:
    def test_accepts_valid_section(self):
        assert validate_sharding_stats(_good_sharding_section()) == []

    def test_rejects_missing_and_extra_keys(self):
        section = _good_sharding_section()
        del section["router"]
        section["bonus"] = 1
        errors = validate_sharding_stats(section)
        assert any("router" in e for e in errors)
        assert any("unexpected" in e for e in errors)

    def test_rejects_wrong_shard_count(self):
        section = _good_sharding_section()
        section["per_shard"] = section["per_shard"][:1]
        assert validate_sharding_stats(section) != []

    def test_rejects_misordered_shard_indices(self):
        section = _good_sharding_section()
        section["per_shard"][0]["shard"] = 1
        section["per_shard"][1]["shard"] = 0
        assert validate_sharding_stats(section) != []

    def test_rejects_bad_mode(self):
        section = _good_sharding_section()
        section["mode"] = "telepathy"
        assert validate_sharding_stats(section) != []

    def test_rejects_negative_counters(self):
        section = _good_sharding_section()
        section["per_shard"][1]["late_events"] = -1
        assert validate_sharding_stats(section) != []

    def test_sharded_engine_dispatch(self):
        label = "sharded[n=2,serial]"
        good = {"sharding": _good_sharding_section()}
        assert validate_engine_stats(label, good) == []
        # Missing sharding section: invalid.
        assert validate_engine_stats(label, {}) != []
        # Frontier at top level of a sharded result: the per-shard runs
        # own their frontiers; the merged result must not claim one.
        bad = dict(good)
        bad["frontier"] = {
            "mode": "cone", "cone_count": 1, "max_phase_skew": 0,
            "frontier_advances": 0,
        }
        assert validate_engine_stats(label, bad) != []

    def test_non_sharded_engine_rejects_sharding_section(self):
        stats = {
            "frontier": {
                "mode": "global", "cone_count": 1, "max_phase_skew": 0,
                "frontier_advances": 0,
            },
            "sharding": _good_sharding_section(),
        }
        assert validate_engine_stats("parallel[k=2]", stats) != []


class TestShardedStatsJson:
    def test_cli_sharded_stats_validate(self, tmp_path):
        spec = tmp_path / "keyed.xml"
        spec.write_text("""
<computation name="keyed-mini">
  <graph>
    <vertex id="txn[a]" class="RandomWalkSensor">
      <param name="seed" value="1" type="int"/>
    </vertex>
    <vertex id="out[a]" class="Recorder"/>
    <edge from="txn[a]" to="out[a]"/>
    <vertex id="txn[b]" class="RandomWalkSensor">
      <param name="seed" value="2" type="int"/>
    </vertex>
    <vertex id="out[b]" class="Recorder"/>
    <edge from="txn[b]" to="out[b]"/>
  </graph>
  <simulation timesteps="6" interval="1.0" seed="5"/>
</computation>
""")
        out_path = tmp_path / "sharded.json"
        assert main([
            "run", str(spec), "--shards", "2", "--key-by", "bracket",
            "--stats-json", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["engine"].startswith("sharded[n=2,")
        errors = validate_engine_stats(payload["engine"], payload["stats"])
        assert not errors, errors
        assert payload["stats"]["sharding"]["mode"] == "phases"
