"""Stats-schema regression tests.

``repro run --stats-json`` output must validate against the documented
schema (:mod:`repro.analysis.stats`) for every engine — in particular the
``frontier`` section every scheduling engine now reports — in both
frontier modes.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.stats import (
    validate_engine_stats,
    validate_frontier_stats,
)
from repro.cli import main

SPEC = """
<computation name="stats-demo">
  <graph>
    <vertex id="sensor" class="RandomWalkSensor">
      <param name="seed" value="1" type="int"/>
    </vertex>
    <vertex id="avg" class="MovingAverage">
      <param name="window" value="3" type="int"/>
    </vertex>
    <vertex id="out" class="Recorder"/>
    <edge from="sensor" to="avg"/>
    <edge from="avg" to="out"/>
  </graph>
  <simulation timesteps="8" interval="1.0" seed="5"/>
</computation>
"""


@pytest.fixture
def spec_file(tmp_path: Path) -> str:
    path = tmp_path / "demo.xml"
    path.write_text(SPEC)
    return str(path)


class TestStatsJsonSchema:
    @pytest.mark.parametrize(
        "engine", ["serial", "parallel", "process", "simulated"]
    )
    @pytest.mark.parametrize("frontier", ["global", "cone"])
    def test_every_engine_validates(self, spec_file, tmp_path, engine,
                                    frontier):
        out_path = tmp_path / f"{engine}-{frontier}.json"
        assert main([
            "run", spec_file, "--engine", engine, "--no-fuse",
            "--frontier", frontier, "--stats-json", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        errors = validate_engine_stats(payload["engine"], payload["stats"])
        assert not errors, errors
        if engine == "serial":
            assert payload["stats"] == {}
        else:
            section = payload["stats"]["frontier"]
            assert section["mode"] == frontier
            assert section["cone_count"] == 3  # a 3-vertex chain

    def test_threaded_stats_report_requested_mode(self, spec_file, tmp_path):
        out_path = tmp_path / "t.json"
        assert main([
            "run", spec_file, "--engine", "parallel", "--threads", "2",
            "--stats-json", str(out_path),
        ]) == 0  # default --frontier is cone
        payload = json.loads(out_path.read_text())
        assert payload["stats"]["frontier"]["mode"] == "cone"


class TestValidatorUnit:
    def test_accepts_valid_section(self):
        assert validate_frontier_stats({
            "mode": "cone",
            "cone_count": 4,
            "max_phase_skew": 2,
            "frontier_advances": 17,
        }) == []

    def test_rejects_bad_mode_and_types(self):
        errors = validate_frontier_stats({
            "mode": "both",
            "cone_count": 0,
            "max_phase_skew": True,
            "frontier_advances": "many",
        })
        assert len(errors) == 4

    def test_rejects_unknown_keys_and_missing(self):
        errors = validate_frontier_stats({"mode": "global", "extra": 1})
        assert any("unexpected keys" in e for e in errors)
        assert any("cone_count" in e for e in errors)

    def test_engine_dispatch(self):
        assert validate_engine_stats("serial", {}) == []
        assert validate_engine_stats("serial", {"frontier": {}}) != []
        assert validate_engine_stats("parallel[k=2]", {}) != []
        good = {
            "frontier": {
                "mode": "global",
                "cone_count": 1,
                "max_phase_skew": 0,
                "frontier_advances": 0,
            }
        }
        for engine in ("parallel[k=2]", "process[w=2]", "simulated[k=2,P=2]"):
            assert validate_engine_stats(engine, good) == []

    def test_non_mapping_stats(self):
        assert validate_engine_stats("parallel[k=1]", None) != []
        assert validate_frontier_stats(7) != []
