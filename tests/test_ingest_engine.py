"""End-to-end: noisy arrivals -> reorder buffer -> engines.

Property: whatever phases the watermark seals, the engines agree on them
(serializability is orthogonal to ingestion noise), and with a sufficient
wait the sealed phases recover the true per-tick snapshots exactly.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.serializability import assert_serializable
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import PassthroughSource
from repro.graph.model import ComputationGraph
from repro.ingest import ReorderBuffer, noisy_observations
from repro.models.arithmetic import Sum
from repro.models.basic import Recorder
from repro.runtime.engine import ParallelEngine

SOURCES = ["a", "b", "c"]


def fusion_program() -> Program:
    g = ComputationGraph(name="fusion")
    g.add_vertices(SOURCES + ["fused", "ops"])
    for s in SOURCES:
        g.add_edge(s, "fused")
    g.add_edge("fused", "ops")
    behaviors = {s: PassthroughSource() for s in SOURCES}
    behaviors["fused"] = Sum()
    behaviors["ops"] = Recorder()
    return Program(g, behaviors)


def seal_phases(arrivals, wait: float):
    buf = ReorderBuffer(wait=wait)
    phases = []
    for a in arrivals:
        phases.extend(buf.offer(a))
    phases.extend(buf.flush())
    return phases, buf


class TestNoisyPathEndToEnd:
    @given(
        st.integers(0, 10**6),
        st.floats(0.0, 3.0),
        st.integers(10, 60),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_engines_agree_on_sealed_phases(self, seed, wait, ticks):
        arrivals = noisy_observations(
            SOURCES, ticks=ticks, clock_noise=0.05,
            delay_mean=0.3, delay_jitter=1.5, seed=seed,
        )
        phases, _buf = seal_phases(arrivals, wait)
        prog = fusion_program()
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=2).run(phases)
        assert_serializable(serial, par)

    def test_sufficient_wait_recovers_true_snapshots(self):
        arrivals = noisy_observations(
            SOURCES, ticks=50, clock_noise=0.05,
            delay_mean=0.3, delay_jitter=1.5, seed=3,
        )
        phases, buf = seal_phases(arrivals, wait=5.0)
        assert buf.late_count == 0
        assert len(phases) == 50
        # Every sealed phase carries all three sources (no event lost).
        assert all(set(p.values) == set(SOURCES) for p in phases)

    def test_short_wait_drops_events_but_stays_consistent(self):
        arrivals = noisy_observations(
            SOURCES, ticks=80, clock_noise=0.05,
            delay_mean=0.3, delay_jitter=2.5, seed=4,
        )
        phases, buf = seal_phases(arrivals, wait=0.2)
        assert buf.late_count > 0
        prog = fusion_program()
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=3).run(phases)
        assert_serializable(serial, par)
        # Fused sums exist despite the losses: latched values stand in.
        assert serial.records.get("ops")
