"""Schema validation for the stats["serve"] section."""

import pytest

from repro.analysis.stats import validate_serve_stats


def _valid_section():
    return {
        "engine": "parallel",
        "phases_ingested": 10,
        "phases_retired": 8,
        "results_streamed": 8,
        "events_accepted": 40,
        "late_events": 2,
        "buffer_rejects": 1,
        "feed_stalls": 3,
        "backpressure_stalls": 4,
        "buffer_high_water": 5,
        "feed_high_water": 6,
        "rss_high_water_bytes": 1 << 20,
        "sse_dropped": 0,
        "spot_checks_passed": 2,
        "spot_checks_failed": 0,
    }


class TestValid:
    def test_valid_section_passes(self):
        assert validate_serve_stats(_valid_section()) == []

    def test_process_engine_accepted(self):
        section = _valid_section()
        section["engine"] = "process"
        assert validate_serve_stats(section) == []


class TestShape:
    def test_non_mapping_rejected(self):
        assert validate_serve_stats(None)
        assert validate_serve_stats([1, 2])

    def test_unknown_engine_flagged(self):
        section = _valid_section()
        section["engine"] = "serial"
        assert any("engine" in e for e in validate_serve_stats(section))

    def test_missing_counter_flagged(self):
        section = _valid_section()
        del section["phases_retired"]
        assert any("phases_retired" in e for e in validate_serve_stats(section))

    @pytest.mark.parametrize("bad", [-1, 1.5, "3", True, None])
    def test_bad_counter_values_flagged(self, bad):
        section = _valid_section()
        section["sse_dropped"] = bad
        assert any("sse_dropped" in e for e in validate_serve_stats(section))

    def test_unexpected_key_flagged(self):
        section = _valid_section()
        section["bonus"] = 1
        assert any("unexpected" in e for e in validate_serve_stats(section))

    def test_where_prefixes_errors(self):
        section = _valid_section()
        section["engine"] = "serial"
        errors = validate_serve_stats(section, where="stats.serve")
        assert errors and all(e.startswith("stats.serve") for e in errors)


class TestInvariants:
    def test_retired_cannot_exceed_ingested(self):
        section = _valid_section()
        section["phases_retired"] = 11
        section["results_streamed"] = 11
        assert any("exceeds" in e for e in validate_serve_stats(section))

    def test_every_retired_phase_must_stream(self):
        section = _valid_section()
        section["results_streamed"] = 7
        assert any(
            "results_streamed" in e for e in validate_serve_stats(section)
        )

    def test_backpressure_total_is_rejects_plus_stalls(self):
        section = _valid_section()
        section["backpressure_stalls"] = 9
        assert any(
            "backpressure_stalls" in e for e in validate_serve_stats(section)
        )
