"""SSE wire formatting and listener fan-out."""

import pytest

from repro.serve import MessageAnnouncer, format_sse

from .conftest import parse_sse


class TestFormatSse:
    def test_dict_payload_is_sorted_json(self):
        msg = format_sse({"b": 1, "a": 2})
        assert msg == 'data: {"a": 2, "b": 1}\n\n'

    def test_event_and_id_lines(self):
        msg = format_sse({"x": 1}, event="phase", id="7")
        assert msg.rstrip("\n").splitlines() == [
            "event: phase", "id: 7", 'data: {"x": 1}'
        ]
        assert msg.endswith("\n\n")

    def test_string_passthrough(self):
        assert format_sse("hello") == "data: hello\n\n"

    def test_multiline_string_gets_data_prefix_per_line(self):
        msg = format_sse("a\nb")
        assert msg == "data: a\ndata: b\n\n"
        _, _, data = parse_sse(format_sse('{"k":\n1}'))
        assert data == {"k": 1}

    def test_roundtrip_through_parser(self):
        event, sse_id, data = parse_sse(
            format_sse({"phase": 3, "records": [["v", [1, 2]]]},
                       event="phase", id="3")
        )
        assert (event, sse_id) == ("phase", "3")
        assert data == {"phase": 3, "records": [["v", [1, 2]]]}


class TestMessageAnnouncer:
    def test_fan_out_to_all_listeners(self):
        ann = MessageAnnouncer()
        q1, q2 = ann.listen(), ann.listen()
        ann.announce("m1")
        assert q1.get_nowait() == "m1"
        assert q2.get_nowait() == "m1"
        assert ann.announced == 1

    def test_unlisten_stops_delivery_and_is_idempotent(self):
        ann = MessageAnnouncer()
        q = ann.listen()
        ann.unlisten(q)
        ann.unlisten(q)
        ann.announce("m")
        assert q.empty()

    def test_full_listener_drops_instead_of_blocking(self):
        ann = MessageAnnouncer(max_queue=2)
        q = ann.listen()
        for i in range(5):
            ann.announce(f"m{i}")
        # The slow listener lost messages; the announcer never stalled.
        assert ann.dropped == 3
        assert [q.get_nowait() for _ in range(2)] == ["m0", "m1"]

    def test_drop_is_per_listener(self):
        ann = MessageAnnouncer(max_queue=1)
        slow, fast = ann.listen(), ann.listen()
        ann.announce("m0")
        fast.get_nowait()
        ann.announce("m1")
        assert ann.dropped == 1  # only the slow queue overflowed
        assert fast.get_nowait() == "m1"
        assert slow.get_nowait() == "m0"

    def test_invalid_queue_size(self):
        with pytest.raises(ValueError):
            MessageAnnouncer(max_queue=0)
