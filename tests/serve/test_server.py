"""HTTP surface of the serve layer: ingest, control, SSE egress."""

import http.client
import json

import pytest

from repro.models.domains.keyed import build_keyed_workload
from repro.serve import ServeConfig, ServeServer, ServeSession

from .conftest import serial_oracle


@pytest.fixture
def workload():
    return build_keyed_workload(num_keys=3, ticks=20, seed=29)


@pytest.fixture
def served(workload):
    session = ServeSession(
        workload.program,
        ServeConfig(
            wait=workload.wait, quantum=workload.quantum, check_sample=1
        ),
    )
    session.start()
    with ServeServer(session) as server:
        yield server, session, workload
    session.close(drain=False)


def _request(server, method, path, body=None, timeout=10.0):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def _ndjson(arrivals):
    lines = []
    for a in arrivals:
        lines.append(json.dumps({
            "timestamp": a.event.timestamp,
            "source": a.event.source,
            "value": a.event.value,
            "arrival": a.arrival,
        }))
    return ("\n".join(lines) + "\n").encode()


class TestEndpoints:
    def test_healthz(self, served):
        server, _session, _workload = served
        status, _headers, body = _request(server, "GET", "/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True

    def test_post_events_then_stats(self, served):
        server, session, workload = served
        status, _h, body = _request(
            server, "POST", "/events", _ndjson(workload.arrivals)
        )
        assert status == 200
        reply = json.loads(body)
        assert reply["accepted"] == len(workload.arrivals)
        assert reply["late"] == 0

        status, _h, body = _request(server, "GET", "/stats")
        assert status == 200
        serve = json.loads(body)["serve"]
        assert serve["events_accepted"] == len(workload.arrivals)
        assert serve["phases_ingested"] > 0

    def test_advance_watermark(self, served):
        server, _session, workload = served
        a = workload.arrivals[0]
        _request(server, "POST", "/events", _ndjson([a]))
        status, _h, body = _request(
            server, "POST", "/advance",
            json.dumps({"watermark": a.event.timestamp + 10.0}).encode(),
        )
        assert status == 200
        assert json.loads(body)["sealed"] >= 1

    def test_advance_rejects_bad_body(self, served):
        server, _s, _w = served
        status, _h, _b = _request(server, "POST", "/advance", b"not json")
        assert status == 400
        status, _h, _b = _request(server, "POST", "/advance", b"{}")
        assert status == 400

    def test_bad_event_line_is_400_with_context(self, served):
        server, _s, _w = served
        status, _h, body = _request(server, "POST", "/events", b"not json\n")
        assert status == 400
        assert json.loads(body)["bad_line"] == 1  # 1-based offending line

    def test_unknown_path_404(self, served):
        server, _s, _w = served
        status, _h, _b = _request(server, "GET", "/nope")
        assert status == 404


class TestBackpressureHttp:
    def test_full_buffer_returns_429_with_retry_after(self, workload):
        session = ServeSession(
            workload.program, ServeConfig(wait=100.0, max_buffered=1)
        )
        session.start()
        try:
            with ServeServer(session) as server:
                src = next(iter(workload.key_of_source))
                lines = "\n".join(
                    json.dumps({"timestamp": float(t), "source": src,
                                "value": {"amount": 1.0}})
                    for t in (0, 5)
                ).encode()
                status, headers, body = _request(
                    server, "POST", "/events", lines
                )
                assert status == 429
                assert headers.get("Retry-After") == "1"
                reply = json.loads(body)
                assert reply["accepted"] == 1  # first line got in
                assert reply["rejected_line"] == 2  # second line bounced
        finally:
            session.close(drain=False)


class TestSseStream:
    def test_stream_delivers_phase_events(self, served):
        server, _session, workload = served
        oracle = build_keyed_workload(num_keys=3, ticks=20, seed=29)
        by_phase, _by_ts, n_phases = serial_oracle(oracle)

        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=15.0
        )
        conn.request("GET", "/stream")
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type").startswith("text/event-stream")

        _request(server, "POST", "/events", _ndjson(workload.arrivals))
        _request(
            server, "POST", "/advance",
            json.dumps({"watermark": 1e9}).encode(),
        )

        got = {}
        buf = b""
        while len(got) < n_phases:
            chunk = resp.read1(65536)
            if not chunk:
                break
            buf += chunk
            while b"\n\n" in buf:
                raw, buf = buf.split(b"\n\n", 1)
                text = raw.decode()
                if "event: phase" not in text:
                    continue  # keep-alive comments, stats events
                data = json.loads(
                    "\n".join(
                        line[len("data: "):]
                        for line in text.splitlines()
                        if line.startswith("data: ")
                    )
                )
                got[data["phase"]] = sorted(data["records"])
        conn.close()

        assert len(got) == n_phases
        for phase, entries in got.items():
            assert entries == by_phase.get(phase, [])
