"""Sharded serving: N engine instances behind one merged result stream.

Equality is checked in *timestamp space*: shard-local phase numbering
differs from the single instance's, but the merged stream is keyed by
sealed timestamp, and at each timestamp the union of the shards' records
must equal the single-instance (serial oracle) records.
"""

import pytest

from repro.analysis.stats import validate_serve_stats
from repro.models.domains.keyed import build_keyed_workload
from repro.serve import ServeConfig, ShardedServeSession

from .conftest import drain_queue, phase_events, serial_oracle


def _workload():
    return build_keyed_workload(num_keys=5, ticks=25, seed=31)


@pytest.mark.parametrize("num_shards", [2, 3])
def test_merged_stream_matches_single_instance(num_shards):
    workload = _workload()
    _by_phase, by_ts, _n = serial_oracle(_workload())

    session = ShardedServeSession(
        workload.program,
        key_of=workload.key_of_source.__getitem__,
        num_shards=num_shards,
        config=ServeConfig(
            wait=workload.wait,
            quantum=workload.quantum,
            check_sample=1,
        ),
    )
    q = session.announcer.listen()
    with session:
        for a in workload.arrivals:
            session.offer(a)
    merged = phase_events(drain_queue(q))

    got = {e["timestamp"]: sorted(e["records"]) for e in merged}
    # Merged timestamps are strictly increasing and cover the oracle's.
    ts_order = [e["timestamp"] for e in merged]
    assert ts_order == sorted(ts_order)
    assert set(by_ts) <= set(got)
    for ts, entries in got.items():
        assert entries == by_ts.get(ts, []), f"timestamp {ts}"

    stats = session.stats()
    serve = stats["serve"]
    assert validate_serve_stats(serve) == []
    assert serve["spot_checks_failed"] == 0
    assert serve["spot_checks_passed"] > 0

    sharding = stats["sharding"]
    assert sharding["num_shards"] == num_shards
    assert sharding["phases_merged"] == len(merged)
    assert sorted(sharding["per_shard"]) == sharding["active_shards"]
    # Per-shard ingest sums to the aggregate.
    assert sum(
        s["phases_ingested"] for s in sharding["per_shard"].values()
    ) == serve["phases_ingested"]


def test_events_route_to_owning_shard_only():
    workload = _workload()
    session = ShardedServeSession(
        workload.program,
        key_of=workload.key_of_source.__getitem__,
        num_shards=2,
        config=ServeConfig(wait=workload.wait, quantum=workload.quantum),
    )
    with session:
        for a in workload.arrivals:
            session.offer(a)
    per_shard = session.stats()["sharding"]["per_shard"].values()
    total = sum(s["events_accepted"] for s in per_shard)
    assert total == len(workload.arrivals)
    assert all(s["events_accepted"] > 0 for s in per_shard)


def test_single_shard_degenerates_to_plain_session():
    workload = _workload()
    _by_phase, by_ts, _n = serial_oracle(_workload())
    session = ShardedServeSession(
        workload.program,
        key_of=workload.key_of_source.__getitem__,
        num_shards=1,
        config=ServeConfig(wait=workload.wait, quantum=workload.quantum),
    )
    q = session.announcer.listen()
    with session:
        for a in workload.arrivals:
            session.offer(a)
    merged = phase_events(drain_queue(q))
    got = {e["timestamp"]: sorted(e["records"]) for e in merged}
    for ts, entries in got.items():
        assert entries == by_ts.get(ts, [])
    assert set(by_ts) <= set(got)
