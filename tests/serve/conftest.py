"""Shared fixtures for the serve-layer tests.

The oracle pattern: replay the same arrival stream through a fresh
:class:`ReorderBuffer` (same wait/quantum), run the sealed phases through
the serial executor on a fresh copy of the program, and compare what the
serve pipeline streamed over SSE.  Values are compared after a JSON
round-trip (SSE serialises tuples as lists).
"""

import json

import pytest

from repro.core.serial import SerialExecutor
from repro.ingest import ReorderBuffer
from repro.models.domains.keyed import build_keyed_workload


def norm(value):
    """JSON round-trip normalisation (tuples become lists, recursively)."""
    return json.loads(json.dumps(value, sort_keys=True, default=repr))


def parse_sse(msg):
    """Parse one SSE message into (event, id, data)."""
    event = sse_id = None
    data_lines = []
    for line in msg.splitlines():
        if line.startswith("event: "):
            event = line[len("event: "):]
        elif line.startswith("id: "):
            sse_id = line[len("id: "):]
        elif line.startswith("data: "):
            data_lines.append(line[len("data: "):])
    data = json.loads("\n".join(data_lines)) if data_lines else None
    return event, sse_id, data


def drain_queue(q):
    """All messages currently buffered on an announcer listener queue."""
    out = []
    while True:
        try:
            out.append(q.get_nowait())
        except Exception:
            break
    return out


def phase_events(messages):
    """The parsed ``event: phase`` payloads from raw SSE messages."""
    out = []
    for msg in messages:
        event, _id, data = parse_sse(msg)
        if event == "phase":
            out.append(data)
    return out


def serial_oracle(workload):
    """(records_by_phase, records_by_ts, n_phases) for a keyed workload.

    Replays ``workload.arrivals`` through a fresh buffer + serial
    executor.  Entries are ``(vertex, normalised value)`` sorted by
    vertex name.
    """
    buf = ReorderBuffer(wait=workload.wait, quantum=workload.quantum)
    phases = []
    for a in workload.arrivals:
        phases.extend(buf.offer(a))
    phases.extend(buf.flush())
    result = SerialExecutor(workload.program).run(phases)
    by_phase = {}
    by_ts = {}
    ts_of = {pi.phase: pi.timestamp for pi in phases}
    for name, recs in result.records.items():
        for phase, value in recs:
            by_phase.setdefault(phase, []).append([name, norm(value)])
            by_ts.setdefault(ts_of[phase], []).append([name, norm(value)])
    for entries in by_phase.values():
        entries.sort()
    for entries in by_ts.values():
        entries.sort()
    return by_phase, by_ts, len(phases)


@pytest.fixture
def keyed_workload():
    """A small but non-trivial keyed laundering workload (fresh copy)."""
    return build_keyed_workload(num_keys=4, ticks=30, seed=17)


@pytest.fixture
def keyed_workload_oracle():
    """An identical, independent copy for the serial oracle."""
    return build_keyed_workload(num_keys=4, ticks=30, seed=17)
