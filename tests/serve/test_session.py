"""ServeSession: the full ingest → engine → retire → stream pipeline."""

import pytest

from repro.analysis.stats import validate_serve_stats
from repro.errors import BackpressureError, ServeError
from repro.events import Event
from repro.ingest import ArrivingEvent
from repro.serve import OracleSpotChecker, ServeConfig, ServeSession

from .conftest import drain_queue, phase_events, serial_oracle


def _run_workload(workload, config):
    """Feed a keyed workload through a session; return (events, stats)."""
    session = ServeSession(workload.program, config)
    q = session.announcer.listen()
    with session:
        for a in workload.arrivals:
            session.offer(a)
    stats = session.stats()
    return phase_events(drain_queue(q)), stats


class TestParallelPipeline:
    def test_matches_serial_oracle(self, keyed_workload, keyed_workload_oracle):
        by_phase, _by_ts, n_phases = serial_oracle(keyed_workload_oracle)
        events, stats = _run_workload(
            keyed_workload,
            ServeConfig(
                engine="parallel",
                threads=2,
                wait=keyed_workload.wait,
                quantum=keyed_workload.quantum,
                check_sample=1,  # spot-check every phase
            ),
        )

        # Every sealed phase streamed exactly once, in order.
        assert [e["phase"] for e in events] == list(range(1, n_phases + 1))
        got = {e["phase"]: sorted(e["records"]) for e in events}
        for phase in got:
            assert got[phase] == by_phase.get(phase, []), f"phase {phase}"
        assert set(by_phase) <= set(got)

        serve = stats["serve"]
        assert validate_serve_stats(serve) == []
        assert serve["phases_ingested"] == n_phases
        assert serve["phases_retired"] == n_phases
        assert serve["late_events"] == 0
        assert serve["spot_checks_passed"] == n_phases
        assert serve["spot_checks_failed"] == 0
        assert all(e["spot_check"] == "pass" for e in events)
        assert serve["rss_high_water_bytes"] > 0

    def test_engine_stats_section_appears_after_close(self, keyed_workload):
        _events, stats = _run_workload(
            keyed_workload,
            ServeConfig(wait=keyed_workload.wait, quantum=keyed_workload.quantum),
        )
        assert stats["engine"]["label"].startswith("parallel")
        assert "retirement" in stats["engine"]["stats"]


class TestProcessPipeline:
    def test_matches_serial_oracle(self):
        from repro.models.domains.keyed import build_keyed_workload

        workload = build_keyed_workload(num_keys=3, ticks=20, seed=23)
        oracle_copy = build_keyed_workload(num_keys=3, ticks=20, seed=23)
        by_phase, _by_ts, n_phases = serial_oracle(oracle_copy)
        events, stats = _run_workload(
            workload,
            ServeConfig(
                engine="process",
                workers=2,
                ipc_batch=2,
                wait=workload.wait,
                quantum=workload.quantum,
                check_sample=5,
            ),
        )
        assert [e["phase"] for e in events] == list(range(1, n_phases + 1))
        got = {e["phase"]: sorted(e["records"]) for e in events}
        for phase in got:
            assert got[phase] == by_phase.get(phase, [])
        serve = stats["serve"]
        assert validate_serve_stats(serve) == []
        assert serve["engine"] == "process"
        assert serve["spot_checks_failed"] == 0
        assert serve["spot_checks_passed"] > 0


class TestIngestEdges:
    def _event(self, ts, source, value, arrival=None):
        return ArrivingEvent(
            Event(ts, source, value),
            arrival=ts if arrival is None else arrival,
        )

    def test_backpressure_surfaces_and_is_counted(self, keyed_workload):
        cfg = ServeConfig(wait=100.0, max_buffered=1)
        with ServeSession(keyed_workload.program, cfg) as session:
            src = next(iter(keyed_workload.key_of_source))
            session.offer(self._event(0.0, src, {"amount": 1.0}))
            with pytest.raises(BackpressureError):
                session.offer(self._event(5.0, src, {"amount": 1.0}))
            # Wall-clock sealing drains the buffer; ingest resumes.
            assert session.advance_watermark(1.0) == 1
            result = session.offer(self._event(5.0, src, {"amount": 1.0}))
            assert result["accepted"]
        serve = session.stats()["serve"]
        assert serve["buffer_rejects"] == 1
        assert serve["backpressure_stalls"] >= 1
        assert validate_serve_stats(serve) == []

    def test_late_event_reported_not_fatal(self, keyed_workload):
        cfg = ServeConfig(wait=0.0)
        with ServeSession(keyed_workload.program, cfg) as session:
            src = next(iter(keyed_workload.key_of_source))
            session.offer(self._event(0.0, src, {"amount": 1.0}))
            session.offer(self._event(5.0, src, {"amount": 1.0}, arrival=5.0))
            result = session.offer(
                self._event(0.0, src, {"amount": 2.0}, arrival=6.0)
            )
            assert not result["accepted"]
            assert result["late"]
        assert session.stats()["serve"]["late_events"] == 1

    def test_offer_line_parses_ndjson(self, keyed_workload):
        src = next(iter(keyed_workload.key_of_source))
        with ServeSession(keyed_workload.program, ServeConfig(wait=2.0)) as s:
            result = s.offer_line(
                '{"timestamp": 0.0, "source": "%s", "value": {"amount": 3.0}}'
                % src
            )
            assert result["accepted"]
            with pytest.raises(ServeError):
                s.offer_line("not json")
            with pytest.raises(ServeError):
                s.offer_line('{"timestamp": 1.0}')  # missing source
        assert s.stats()["serve"]["events_accepted"] == 1

    def test_offer_after_close_rejected(self, keyed_workload):
        session = ServeSession(keyed_workload.program, ServeConfig())
        session.start()
        session.close()
        with pytest.raises(ServeError):
            session.offer(self._event(0.0, "txn[acct00]", {"amount": 1.0}))

    def test_close_is_idempotent(self, keyed_workload):
        session = ServeSession(keyed_workload.program, ServeConfig())
        session.start()
        first = session.close()
        second = session.close()
        assert first["serve"]["phases_retired"] == 0
        assert second["serve"] == first["serve"]


class TestSpotChecker:
    def test_detects_tampered_records(self, keyed_workload, keyed_workload_oracle):
        from repro.ingest import ReorderBuffer
        from repro.core.serial import SerialExecutor

        buf = ReorderBuffer(
            wait=keyed_workload.wait, quantum=keyed_workload.quantum
        )
        phases = []
        for a in keyed_workload.arrivals:
            phases.extend(buf.offer(a))
        phases.extend(buf.flush())
        serial = SerialExecutor(keyed_workload_oracle.program).run(phases)
        entries_of = {}
        for name, recs in serial.records.items():
            for phase, value in recs:
                entries_of.setdefault(phase, []).append((name, value))

        checker = OracleSpotChecker(keyed_workload.program, sample_every=1)
        for pi in phases:
            good = entries_of.get(pi.phase, [])
            if pi.phase == phases[-1].phase and good:
                tampered = [(n, ("tampered",)) for n, _ in good]
                assert checker.observe(pi, tampered) is False
            else:
                assert checker.observe(pi, good) is True
        assert checker.failed in (0, 1)
        if checker.failed:
            assert checker.mismatches  # a sample of the divergence is kept

    def test_sampling_skips_unsampled_phases(self, keyed_workload):
        checker = OracleSpotChecker(keyed_workload.program, sample_every=1000)
        from repro.events import PhaseInput

        verdicts = [
            checker.observe(PhaseInput(p, float(p), {}), [])
            for p in range(1, 10)
        ]
        assert verdicts == [None] * 9
        assert checker.checked == 0


class TestConfigValidation:
    def test_bad_engine_rejected(self):
        with pytest.raises(ServeError):
            ServeConfig(engine="gpu")

    def test_bad_capacities_rejected(self):
        with pytest.raises(ServeError):
            ServeConfig(feed_capacity=0)
        with pytest.raises(ServeError):
            ServeConfig(emit_capacity=0)
