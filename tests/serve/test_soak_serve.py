"""Soak: bounded memory over an unbounded keyed stream (opt-in, `-m soak`).

The acceptance bar for continuous operation: run ~10^5 phases of keyed
laundering traffic through the full serve pipeline on the parallel
engine and show the process RSS high-water stays within 2x of its value
at the 10% mark — i.e. retirement actually releases per-phase state and
the stage capacities bound everything else.  ``REPRO_SOAK_PHASES``
scales the run (CI uses a smaller value; the default is the acceptance
size).
"""

import os

import pytest

from repro.errors import BackpressureError
from repro.models.domains.keyed import build_keyed_program, keyed_arrival_stream
from repro.serve import ServeConfig, ServeSession
from repro.serve.session import current_rss_bytes

pytestmark = pytest.mark.soak

SOAK_PHASES = int(os.environ.get("REPRO_SOAK_PHASES", "100000"))


def test_serve_memory_stays_flat_over_keyed_stream():
    keys = [f"acct{i:02d}" for i in range(3)]
    program, _ = build_keyed_program(keys)
    cfg = ServeConfig(
        engine="parallel",
        threads=2,
        wait=2.0,
        quantum=1.0,
        check_sample=500,  # periodic oracle spot-checks
        max_buffered=64,
        rss_sample_every=200,
    )
    mark = max(1, SOAK_PHASES // 10)
    rss_at_mark = 0

    session = ServeSession(program, cfg)
    with session:
        for arriving in keyed_arrival_stream(keys, SOAK_PHASES, seed=7):
            while True:
                try:
                    session.offer(arriving)
                    break
                except BackpressureError:
                    # Credit-style stall: wall-clock sealing drains us.
                    session.advance_watermark(
                        arriving.arrival - cfg.wait
                    )
            if rss_at_mark == 0 and session.phases_retired >= mark:
                rss_at_mark = current_rss_bytes()
    stats = session.stats()["serve"]

    # The stream ran to completion.  A tick whose every per-key event
    # was dropped (~drop_rate^len(keys) of ticks) opens no bin at all,
    # and the trailing wait can leave a couple of bins unsealed, so
    # allow ~1% slack on the phase count.
    assert stats["phases_retired"] >= int(SOAK_PHASES * 0.99) - 8
    assert stats["results_streamed"] == stats["phases_retired"]

    # Every sampled oracle spot-check agreed with the serial replica.
    assert stats["spot_checks_failed"] == 0
    assert (
        stats["spot_checks_passed"]
        >= stats["phases_retired"] // cfg.check_sample - 2
    )

    # Flat memory: the high-water over the whole run is within 2x of
    # the RSS at the 10% mark.
    assert rss_at_mark > 0
    assert stats["rss_high_water_bytes"] <= 2 * rss_at_mark, (
        f"RSS grew: high-water {stats['rss_high_water_bytes']} vs "
        f"{rss_at_mark} at the 10% mark over {stats['phases_retired']} phases"
    )

    # Bounded stages: nothing exceeded its configured capacity.
    assert stats["buffer_high_water"] <= cfg.max_buffered
    assert stats["feed_high_water"] <= cfg.feed_capacity
