"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.simulator.des import Event, Process, Resource, Simulation, Store


class TestEventsAndTime:
    def test_timeout_advances_clock(self):
        sim = Simulation()
        log = []

        def proc():
            yield sim.timeout(5.0)
            log.append(sim.now)
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.start(proc())
        end = sim.run()
        assert log == [5.0, 7.5]
        assert end == 7.5

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulation()
        log = []

        def proc(tag):
            yield sim.timeout(1.0)
            log.append(tag)

        sim.start(proc("a"))
        sim.start(proc("b"))
        sim.run()
        assert log == ["a", "b"]

    def test_event_succeed_value(self):
        sim = Simulation()
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        sim.start(waiter())

        def trigger():
            yield sim.timeout(1.0)
            ev.succeed("payload")

        sim.start(trigger())
        sim.run()
        assert got == ["payload"]

    def test_double_succeed_rejected(self):
        sim = Simulation()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_run_until(self):
        sim = Simulation()

        def proc():
            while True:
                yield sim.timeout(1.0)

        sim.start(proc())
        end = sim.run(until=3.5)
        assert end == 3.5

    def test_process_is_event(self):
        sim = Simulation()

        def child():
            yield sim.timeout(2.0)
            return "done"

        def parent(log):
            result = yield sim.start(child(), name="child")
            log.append((sim.now, result))

        log = []
        sim.start(parent(log))
        sim.run()
        assert log == [(2.0, "done")]

    def test_yielding_non_event_rejected(self):
        sim = Simulation()

        def bad():
            yield 42  # type: ignore[misc]

        sim.start(bad())
        with pytest.raises(SimulationError, match="yield Event"):
            sim.run()


class TestResource:
    def test_capacity_one_serialises(self):
        sim = Simulation()
        res = Resource(sim, 1)
        log = []

        def user(tag, hold):
            yield res.request()
            start = sim.now
            yield sim.timeout(hold)
            res.release()
            log.append((tag, start, sim.now))

        sim.start(user("a", 2.0))
        sim.start(user("b", 3.0))
        sim.run()
        assert log == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]

    def test_fifo_grant_order(self):
        sim = Simulation()
        res = Resource(sim, 1)
        order = []

        def user(tag):
            yield res.request()
            order.append(tag)
            yield sim.timeout(1.0)
            res.release()

        for tag in ("first", "second", "third"):
            sim.start(user(tag))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_capacity_two_parallel(self):
        sim = Simulation()
        res = Resource(sim, 2)
        done = []

        def user(tag):
            yield res.request()
            yield sim.timeout(4.0)
            res.release()
            done.append((tag, sim.now))

        for tag in "abc":
            sim.start(user(tag))
        sim.run()
        # a and b run in parallel, c waits for a slot.
        assert done == [("a", 4.0), ("b", 4.0), ("c", 8.0)]

    def test_release_idle_rejected(self):
        sim = Simulation()
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_contention_stats(self):
        sim = Simulation()
        res = Resource(sim, 1)

        def user():
            yield res.request()
            yield sim.timeout(1.0)
            res.release()

        sim.start(user())
        sim.start(user())
        sim.run()
        assert res.total_requests == 2
        assert res.contended_requests == 1

    def test_utilization_integral(self):
        sim = Simulation()
        res = Resource(sim, 2)

        def user():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        sim.start(user())
        sim.run()
        # 1 unit busy for 10s over capacity 2 -> 50% utilization.
        assert res.utilization(10.0) == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulation(), 0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulation()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        store.put("x")
        sim.start(consumer())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulation()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.start(consumer())
        sim.start(producer())
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_items_and_getters(self):
        sim = Simulation()
        store = Store(sim)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        sim.start(consumer("c1"))
        sim.start(consumer("c2"))

        def producer():
            yield sim.timeout(1.0)
            store.put("first")
            store.put("second")

        sim.start(producer())
        sim.run()
        assert got == [("c1", "first"), ("c2", "second")]

    def test_depth_stats(self):
        sim = Simulation()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.max_depth == 2
        assert len(store) == 2
