"""Tests for cost models."""

import pytest

from repro.errors import SimulationError
from repro.simulator.costs import CostModel


class TestCostModel:
    def test_constant_compute(self):
        cm = CostModel(compute_cost=2.5)
        assert cm.vertex_cost("v", 1) == 2.5

    def test_callable_compute(self):
        cm = CostModel(compute_cost=lambda name, phase: len(name) * phase)
        assert cm.vertex_cost("abc", 2) == 6

    def test_negative_callable_cost_rejected(self):
        cm = CostModel(compute_cost=lambda n, p: -1.0)
        with pytest.raises(SimulationError):
            cm.vertex_cost("v", 1)

    def test_negative_fixed_costs_rejected(self):
        with pytest.raises(SimulationError):
            CostModel(bookkeeping_cost=-0.1)
        with pytest.raises(SimulationError):
            CostModel(env_interval=-1)

    def test_jitter_bounds(self):
        cm = CostModel(compute_cost=10.0, jitter=0.2, seed=3)
        costs = [cm.vertex_cost("v", p) for p in range(200)]
        assert all(8.0 <= c <= 12.0 for c in costs)
        assert len(set(round(c, 9) for c in costs)) > 1

    def test_invalid_jitter(self):
        with pytest.raises(SimulationError):
            CostModel(jitter=1.0)
        with pytest.raises(SimulationError):
            CostModel(jitter=-0.1)

    def test_jitter_reset_reproduces(self):
        cm = CostModel(compute_cost=1.0, jitter=0.5, seed=7)
        first = [cm.vertex_cost("v", p) for p in range(10)]
        cm.reset()
        assert [cm.vertex_cost("v", p) for p in range(10)] == first

    def test_grain_ratio(self):
        cm = CostModel(compute_cost=10.0, bookkeeping_cost=0.5)
        assert cm.grain_ratio() == 20.0

    def test_grain_ratio_zero_bookkeeping(self):
        cm = CostModel(compute_cost=1.0, bookkeeping_cost=0.0)
        assert cm.grain_ratio() == float("inf")

    def test_grain_ratio_callable_needs_reference(self):
        cm = CostModel(compute_cost=lambda n, p: 1.0)
        with pytest.raises(SimulationError):
            cm.grain_ratio()
        assert cm.grain_ratio(reference_compute=5.0) == 100.0
