"""Tests for run-queue disciplines and phase-latency measurement."""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.serial import SerialExecutor
from repro.core.tracer import ExecutionTracer, TraceEvent, phase_latencies
from repro.errors import SimulationError
from repro.simulator.costs import CostModel
from repro.simulator.des import PriorityStore, Simulation
from repro.simulator.machine import SimulatedEngine
from repro.streams.workloads import grid_workload


class TestPriorityStore:
    def test_lowest_key_first(self):
        sim = Simulation()
        store = PriorityStore(sim, key=lambda x: x)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        for v in (5, 1, 3):
            store.put(v)
        sim.start(consumer())
        sim.run()
        assert got == [1, 3, 5]

    def test_blocked_getter_served_on_put(self):
        sim = Simulation()
        store = PriorityStore(sim, key=lambda x: x)
        got = []

        def consumer():
            got.append((yield store.get()))

        sim.start(consumer())

        def producer():
            yield sim.timeout(1.0)
            store.put(42)

        sim.start(producer())
        sim.run()
        assert got == [42]

    def test_tie_break_by_insertion(self):
        sim = Simulation()
        store = PriorityStore(sim, key=lambda x: x[0])
        for item in ((1, "first"), (1, "second")):
            store.put(item)
        got = []

        def consumer():
            for _ in range(2):
                got.append((yield store.get()))

        sim.start(consumer())
        sim.run()
        assert got == [(1, "first"), (1, "second")]

    def test_len_and_depth(self):
        sim = Simulation()
        store = PriorityStore(sim, key=lambda x: x)
        store.put(2)
        store.put(1)
        assert len(store) == 2
        assert store.max_depth == 2


class TestQueueDisciplines:
    @pytest.mark.parametrize(
        "discipline", ["fifo", "lifo", "low_phase_first", "low_vertex_first"]
    )
    def test_all_disciplines_serializable(self, discipline):
        prog, phases = grid_workload(3, 3, phases=15, seed=4)
        serial = SerialExecutor(prog).run(phases)
        res = SimulatedEngine(
            prog,
            num_workers=3,
            queue_discipline=discipline,
            cost_model=CostModel(compute_cost=1.0, bookkeeping_cost=0.05),
        ).run(phases)
        assert_serializable(serial, res)

    def test_unknown_discipline_rejected(self):
        prog, _ = grid_workload(2, 2, phases=1)
        with pytest.raises(SimulationError, match="queue_discipline"):
            SimulatedEngine(prog, queue_discipline="random")

    def test_disciplines_differ_in_schedule(self):
        prog, phases = grid_workload(4, 4, phases=20, seed=9)
        orders = {}
        for disc in ("fifo", "lifo"):
            res = SimulatedEngine(
                prog,
                num_workers=2,
                queue_discipline=disc,
                cost_model=CostModel(compute_cost=1.0),
            ).run(phases)
            orders[disc] = res.executions
        assert orders["fifo"] != orders["lifo"]
        assert set(orders["fifo"]) == set(orders["lifo"])


class TestPhaseLatencies:
    def test_from_synthetic_events(self):
        events = [
            TraceEvent(0.0, "phase_started", (0, 1)),
            TraceEvent(1.0, "phase_started", (0, 2)),
            TraceEvent(5.0, "phase_completed", (0, 1)),
            TraceEvent(9.0, "phase_completed", (0, 2)),
        ]
        assert phase_latencies(events) == {1: 5.0, 2: 8.0}

    def test_incomplete_phases_omitted(self):
        events = [TraceEvent(0.0, "phase_started", (0, 1))]
        assert phase_latencies(events) == {}

    def test_engines_emit_completion_events(self):
        prog, phases = grid_workload(3, 3, phases=10, seed=5)
        tracer = ExecutionTracer()
        SimulatedEngine(
            prog, num_workers=2, tracer=tracer,
            cost_model=CostModel(compute_cost=1.0),
        ).run(phases)
        lats = phase_latencies(tracer.events)
        assert set(lats) == set(range(1, 11))
        assert all(v > 0 for v in lats.values())

    def test_threaded_engine_emits_completions(self):
        from repro.runtime.engine import ParallelEngine

        prog, phases = grid_workload(2, 2, phases=8, seed=6)
        tracer = ExecutionTracer()
        ParallelEngine(prog, num_threads=2, tracer=tracer).run(phases)
        lats = phase_latencies(tracer.events)
        assert set(lats) == set(range(1, 9))
        assert all(v >= 0 for v in lats.values())
