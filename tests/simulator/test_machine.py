"""Tests for the simulated SMP engine: correctness, determinism, and the
speedup shapes of the paper's Section 4."""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.invariants import InvariantChecker
from repro.core.serial import SerialExecutor
from repro.core.tracer import ExecutionTracer
from repro.errors import SimulationError
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.simulator.metrics import SpeedupPoint, speedup_curve
from repro.streams.workloads import fig1_workload, grid_workload, pipeline_workload

from tests.conftest import make_chain_program, signals


class TestCorrectness:
    @pytest.mark.parametrize("workers,procs", [(1, 1), (2, 2), (4, 2), (3, 8)])
    def test_matches_serial_oracle(self, workers, procs):
        prog, phases = grid_workload(3, 3, phases=20, seed=6)
        serial = SerialExecutor(prog).run(phases)
        sim = SimulatedEngine(
            prog, num_workers=workers, num_processors=procs
        ).run(phases)
        assert_serializable(serial, sim)

    def test_invariants_clean(self):
        prog, phases = fig1_workload(phases=15)
        checker = InvariantChecker()
        SimulatedEngine(prog, num_workers=3, checker=checker).run(phases)
        assert checker.violations == []

    def test_barrier_mode_matches_serial(self):
        prog, phases = grid_workload(2, 3, phases=15, seed=7)
        serial = SerialExecutor(prog).run(phases)
        sim = SimulatedEngine(
            prog, num_workers=2, max_in_flight_phases=1
        ).run(phases)
        assert_serializable(serial, sim)

    def test_zero_phases(self):
        prog = make_chain_program(2, {})
        res = SimulatedEngine(prog, num_workers=2).run([])
        assert res.execution_count == 0
        assert res.wall_time == 0.0

    def test_invalid_params(self):
        prog = make_chain_program(2, {})
        with pytest.raises(SimulationError):
            SimulatedEngine(prog, num_workers=0)
        with pytest.raises(SimulationError):
            SimulatedEngine(prog, num_processors=0)
        with pytest.raises(SimulationError):
            SimulatedEngine(prog, max_in_flight_phases=0)


class TestDeterminism:
    def test_identical_reruns(self):
        prog, phases = grid_workload(3, 3, phases=20, seed=8)
        engine = SimulatedEngine(
            prog, num_workers=3, cost_model=CostModel(jitter=0.3, seed=5)
        )
        r1 = engine.run(phases)
        r2 = engine.run(phases)
        assert r1.wall_time == r2.wall_time
        assert r1.executions == r2.executions
        assert r1.records == r2.records

    def test_jitter_changes_schedule_not_results(self):
        prog, phases = grid_workload(3, 3, phases=20, seed=8)
        r1 = SimulatedEngine(
            prog, num_workers=3, cost_model=CostModel(jitter=0.4, seed=1)
        ).run(phases)
        r2 = SimulatedEngine(
            prog, num_workers=3, cost_model=CostModel(jitter=0.4, seed=2)
        ).run(phases)
        assert r1.records == r2.records
        assert r1.executions_as_set() == r2.executions_as_set()


class TestVirtualTime:
    def test_serial_makespan_accounts_all_work(self):
        """k=1, P=1, unit compute: makespan >= executions x compute."""
        prog, phases = pipeline_workload(depth=4, phases=10)
        cm = CostModel(compute_cost=1.0, bookkeeping_cost=0.0, phase_start_cost=0.0)
        res = SimulatedEngine(
            prog, num_workers=1, num_processors=1, cost_model=cm
        ).run(phases)
        assert res.wall_time == pytest.approx(res.execution_count * 1.0)

    def test_makespan_bounded_below_by_critical_path(self):
        prog, phases = pipeline_workload(depth=6, phases=1)
        cm = CostModel(compute_cost=2.0, bookkeeping_cost=0.0, phase_start_cost=0.0)
        res = SimulatedEngine(
            prog, num_workers=8, num_processors=8, cost_model=cm
        ).run(phases)
        # One phase through a depth-6 chain cannot beat 6 x 2.0.
        assert res.wall_time >= 12.0

    def test_tracer_uses_virtual_clock(self):
        prog, phases = pipeline_workload(depth=3, phases=5)
        tracer = ExecutionTracer()
        cm = CostModel(compute_cost=1.0)
        res = SimulatedEngine(
            prog, num_workers=2, cost_model=cm, tracer=tracer
        ).run(phases)
        times = [ev.time for ev in tracer.events]
        assert max(times) <= res.wall_time
        assert any(t > 0 for t in times)


class TestSpeedupShapes:
    """The Section 4 results, as shape assertions."""

    def test_dual_processor_two_workers_speedup_about_half(self):
        """The paper: ~50% speedup with 2 computation threads on a
        dual-processor (env thread always present).  With a moderate
        bookkeeping:compute ratio the simulated machine lands in the same
        band."""
        prog, phases = grid_workload(4, 4, phases=40, seed=9)
        cm = CostModel(compute_cost=1.0, bookkeeping_cost=0.35, phase_start_cost=0.1)
        points = speedup_curve(prog, phases, cm, [1, 2], processors=2)
        speedup = points[1].speedup
        assert 1.25 <= speedup <= 1.85, f"speedup {speedup} outside paper band"

    def test_near_linear_for_coarse_grain(self):
        """The paper's prediction: near-linear speedup with one worker per
        processor when vertex compute dominates bookkeeping."""
        prog, phases = grid_workload(8, 4, phases=25, seed=10)
        cm = CostModel(compute_cost=50.0, bookkeeping_cost=0.05)
        points = speedup_curve(
            prog, phases, cm, [1, 2, 4], processors=lambda k: k + 1
        )
        assert points[1].speedup > 1.8
        assert points[2].speedup > 3.4
        assert points[2].efficiency > 0.85

    def test_fine_grain_degrades(self):
        """When bookkeeping rivals compute, the global lock serialises and
        efficiency collapses — the flip side of the paper's prediction."""
        prog, phases = grid_workload(8, 4, phases=25, seed=10)
        cm = CostModel(compute_cost=0.05, bookkeeping_cost=0.05)
        points = speedup_curve(
            prog, phases, cm, [1, 4], processors=lambda k: k + 1
        )
        assert points[1].efficiency < 0.7

    def test_more_workers_never_hurt_much(self):
        prog, phases = grid_workload(6, 3, phases=20, seed=11)
        cm = CostModel(compute_cost=5.0, bookkeeping_cost=0.1)
        points = speedup_curve(
            prog, phases, cm, [1, 2, 4, 8], processors=lambda k: k
        )
        makespans = [p.makespan for p in points]
        assert makespans[1] < makespans[0]
        # Saturation beyond available parallelism is fine; regression is not.
        assert makespans[3] <= makespans[1] * 1.05

    def test_speedup_point_formatting(self):
        prog, phases = grid_workload(2, 2, phases=5)
        points = speedup_curve(prog, phases, CostModel(), [1])
        assert len(SpeedupPoint.header().split()) == 7
        assert len(points[0].row().split()) == 7

    def test_speedup_curve_empty(self):
        prog, phases = grid_workload(2, 2, phases=5)
        assert speedup_curve(prog, phases, CostModel(), []) == []


class TestStats:
    def test_stats_structure(self):
        prog, phases = grid_workload(3, 3, phases=10)
        res = SimulatedEngine(prog, num_workers=2, num_processors=2).run(phases)
        assert res.stats["num_workers"] == 2
        assert 0 <= res.stats["processors"]["utilization"] <= 1.0
        assert res.stats["lock"]["total_requests"] > 0
        assert res.engine == "simulated[k=2,P=2]"
