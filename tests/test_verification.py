"""Tests for exhaustive schedule exploration (the small-model checker)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import EMIT_NOTHING, FunctionVertex, SourceVertex
from repro.errors import ReproError
from repro.events import PhaseInput
from repro.graph.generators import fig3_graph, random_dag
from repro.graph.model import ComputationGraph
from repro.streams.workloads import sum_behaviors
from repro.verification import explore_all_schedules

from tests.conftest import ScriptedSource, forward_vertex, signals, sum_vertex


def small_program() -> Program:
    g = ComputationGraph.from_edges([("a", "c"), ("b", "c"), ("c", "d")])
    return Program(
        g,
        {
            "a": ScriptedSource({1: 1, 2: 10}),
            "b": ScriptedSource({1: 2}),
            "c": sum_vertex(),
            "d": forward_vertex(),
        },
    )


class TestExploration:
    def test_small_program_consistent(self):
        report = explore_all_schedules(small_program(), signals(2))
        assert report.consistent
        assert report.complete_schedules == 1
        assert report.signatures_explored > 5  # genuinely branched

    def test_outcome_matches_serial_oracle(self):
        prog = small_program()
        report = explore_all_schedules(prog, signals(2))
        serial = SerialExecutor(prog).run(signals(2))
        executed, records, messages = report.outcomes[0]
        assert executed == serial.executions_as_set()
        assert dict((v, list(log)) for v, log in records) == serial.records
        assert messages == serial.message_count

    def test_fig3_graph_all_schedules(self):
        g = fig3_graph()
        prog = Program(g, sum_behaviors(g, seed=1))
        report = explore_all_schedules(prog, signals(2))
        assert report.consistent
        # Dense fig3 over 2 phases: 12 pairs; many interleavings collapse
        # to far fewer signatures, but still a real space.
        assert report.signatures_explored > 50

    def test_truncation(self):
        g = fig3_graph()
        prog = Program(g, sum_behaviors(g, seed=1))
        report = explore_all_schedules(prog, signals(2), max_states=10)
        assert report.truncated
        assert not report.consistent

    def test_invalid_max_states(self):
        with pytest.raises(ReproError):
            explore_all_schedules(small_program(), signals(1), max_states=0)

    def test_sparse_emission_program(self):
        """Δ-sparse behaviour: some pairs never execute; still one outcome."""
        g = ComputationGraph.from_edges([("s", "m"), ("m", "t")])

        class EveryOther(SourceVertex):
            def on_execute(self, ctx):
                return ctx.phase if ctx.phase % 2 else EMIT_NOTHING

        prog = Program(
            g,
            {"s": EveryOther(), "m": forward_vertex(), "t": forward_vertex()},
        )
        report = explore_all_schedules(prog, signals(3))
        assert report.consistent
        executed, _records, _messages = report.outcomes[0]
        assert (2, 2) not in executed  # phase 2 was silent downstream

    @given(
        st.integers(2, 6),
        st.floats(0.2, 0.8),
        st.integers(0, 10**6),
        st.integers(1, 2),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_random_small_graphs_consistent(
        self, n, density, seed, phases_n
    ):
        g = random_dag(n, edge_prob=density, seed=seed)
        prog = Program(g, sum_behaviors(g, seed=seed))
        report = explore_all_schedules(prog, signals(phases_n), max_states=50_000)
        assert not report.truncated
        assert report.consistent
