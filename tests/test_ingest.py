"""Tests for the reorder buffer and noisy-clock ingestion (Section 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BackpressureError, WorkloadError
from repro.events import Event
from repro.ingest import (
    ArrivingEvent,
    ReorderBuffer,
    bin_timestamp,
    late_event_tradeoff,
    noisy_observations,
)


def arr(ts: float, source: str, value, arrival: float) -> ArrivingEvent:
    return ArrivingEvent(Event(ts, source, value), arrival)


class TestArrivingEvent:
    def test_arrival_before_generation_rejected(self):
        with pytest.raises(WorkloadError):
            arr(5.0, "a", 1, arrival=4.0)


class TestReorderBuffer:
    def test_in_order_events_seal_after_wait(self):
        buf = ReorderBuffer(wait=1.0)
        assert buf.offer(arr(0.0, "a", 1, arrival=0.2)) == []
        # Arrival 1.5 pushes the watermark to 0.5 >= timestamp 0: sealed.
        sealed = buf.offer(arr(1.0, "a", 2, arrival=1.5))
        assert [p.timestamp for p in sealed] == [0.0]

    def test_watermark_semantics(self):
        buf = ReorderBuffer(wait=2.0)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        # Watermark = 0.1 - 2.0 < 0: nothing sealed.
        assert buf.watermark < 0
        sealed = buf.offer(arr(3.0, "a", 2, arrival=3.1))
        # Watermark = 1.1: timestamp 0 seals, timestamp 3 still pending.
        assert [p.timestamp for p in sealed] == [0.0]
        assert sealed[0].values == {"a": 1}

    def test_out_of_order_event_recovered_within_wait(self):
        buf = ReorderBuffer(wait=2.0)
        buf.offer(arr(1.0, "a", "later", arrival=1.1))
        buf.offer(arr(0.0, "b", "earlier", arrival=1.2))  # late but in window
        sealed = buf.offer(arr(4.0, "a", "x", arrival=4.0))
        assert [p.timestamp for p in sealed] == [0.0, 1.0]
        assert sealed[0].values == {"b": "earlier"}

    def test_late_event_dropped_and_counted(self):
        buf = ReorderBuffer(wait=0.5)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        buf.offer(arr(5.0, "a", 2, arrival=5.0))  # seals ts 0
        assert buf.late_count == 0
        buf.offer(arr(0.0, "b", 3, arrival=5.1))  # for sealed ts: late
        assert buf.late_count == 1
        assert buf.accepted == 2

    def test_same_bin_groups_jittered_clocks(self):
        buf = ReorderBuffer(wait=1.0, quantum=1.0)
        buf.offer(arr(0.95, "a", 1, arrival=1.0))
        buf.offer(arr(1.04, "b", 2, arrival=1.1))
        sealed = buf.flush()
        assert len(sealed) == 1
        assert sealed[0].values == {"a": 1, "b": 2}

    def test_phases_numbered_sequentially(self):
        buf = ReorderBuffer(wait=0.0)
        all_sealed = []
        for t in (0.0, 1.0, 2.0, 3.0):
            all_sealed.extend(buf.offer(arr(t, "a", t, arrival=t + 0.01)))
        all_sealed.extend(buf.flush())
        assert [p.phase for p in all_sealed] == [1, 2, 3, 4]
        assert [p.timestamp for p in all_sealed] == [0.0, 1.0, 2.0, 3.0]

    def test_flush_seals_everything(self):
        buf = ReorderBuffer(wait=100.0)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        buf.offer(arr(1.0, "a", 2, arrival=1.1))
        sealed = buf.flush()
        assert len(sealed) == 2

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            ReorderBuffer(wait=-1)
        with pytest.raises(WorkloadError):
            ReorderBuffer(wait=1, quantum=0)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 20),  # true tick
                st.floats(0.0, 5.0, allow_nan=False),  # delay
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(0.0, 6.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_no_event_lost_or_duplicated(self, raw, wait):
        """accepted + late == offered, sealed phase timestamps strictly
        increase, and with wait >= max delay nothing is ever late."""
        arrivals = sorted(
            (ArrivingEvent(Event(float(t), "s", i), float(t) + d)
             for i, (t, d) in enumerate(raw)),
            key=lambda a: a.arrival,
        )
        buf = ReorderBuffer(wait=wait)
        sealed = []
        for a in arrivals:
            sealed.extend(buf.offer(a))
        sealed.extend(buf.flush())
        assert buf.accepted + buf.late_count == len(arrivals)
        times = [p.timestamp for p in sealed]
        assert times == sorted(set(times))
        max_delay = max(d for _t, d in raw)
        # Strict margin: (t + d) - d can exceed t in floating point, so a
        # wait exactly equal to the max delay can seal a hair early.
        if wait >= max_delay + 1e-6:
            assert buf.late_count == 0


class TestBinning:
    """Regression: binning used Python's round(), which is banker's
    round-half-even — exact half-quantum stamps binned by *parity*
    (0.5 -> 0.0 but 1.5 -> 2.0), so identical sensor offsets landed in
    different snapshots.  Binning is now explicit half-up."""

    def test_half_quantum_stamps_bin_uniformly(self):
        # These fail under round(): round(0.5) == 0 but round(1.5) == 2.
        assert bin_timestamp(0.5, 1.0) == 1.0
        assert bin_timestamp(1.5, 1.0) == 2.0
        assert bin_timestamp(2.5, 1.0) == 3.0
        assert bin_timestamp(3.5, 1.0) == 4.0

    def test_identical_offsets_same_relative_bin(self):
        # Two sensors with the same +0.5 clock offset at consecutive
        # ticks must land the same distance from their true instant.
        assert bin_timestamp(0.5, 1.0) - 0.0 == bin_timestamp(1.5, 1.0) - 1.0

    def test_nearest_instant_semantics_preserved(self):
        assert bin_timestamp(0.95, 1.0) == 1.0
        assert bin_timestamp(1.04, 1.0) == 1.0
        assert bin_timestamp(1.49, 1.0) == 1.0
        assert bin_timestamp(-0.4, 1.0) == 0.0

    def test_non_unit_quantum(self):
        assert bin_timestamp(0.25, 0.5) == 0.5
        assert bin_timestamp(0.74, 0.5) == 0.5
        assert bin_timestamp(0.76, 0.5) == 1.0

    def test_buffer_groups_half_quantum_siblings(self):
        # End-to-end through the buffer: ts 0.5 and 1.5 (consecutive
        # ticks, same offset) must seal as *different* consecutive
        # phases 1.0 and 2.0 — under round() they collapsed 0.5 into
        # the 0.0 bin while 1.5 went up to 2.0, skipping a phase.
        buf = ReorderBuffer(wait=0.0, quantum=1.0)
        sealed = []
        sealed += buf.offer(arr(0.5, "a", "x", arrival=0.5))
        sealed += buf.offer(arr(1.5, "a", "y", arrival=1.5))
        sealed += buf.flush()
        assert [p.timestamp for p in sealed] == [1.0, 2.0]


class TestNoisyObservations:
    def test_deterministic(self):
        a = noisy_observations(["x", "y"], 20, seed=3)
        b = noisy_observations(["x", "y"], 20, seed=3)
        assert a == b

    def test_arrival_ordered(self):
        arrivals = noisy_observations(["x", "y", "z"], 30, seed=1)
        times = [a.arrival for a in arrivals]
        assert times == sorted(times)

    def test_generation_order_scrambled(self):
        arrivals = noisy_observations(
            ["x", "y"], 40, delay_mean=0.5, delay_jitter=2.0, seed=2
        )
        stamps = [a.event.timestamp for a in arrivals]
        assert stamps != sorted(stamps)  # that's the whole problem

    def test_counts(self):
        arrivals = noisy_observations(["a", "b", "c"], 10, seed=0)
        assert len(arrivals) == 30


class TestTradeoff:
    def test_longer_wait_fewer_late_higher_latency(self):
        arrivals = noisy_observations(
            ["a", "b", "c"], 150, clock_noise=0.05,
            delay_mean=0.5, delay_jitter=2.0, seed=7,
        )
        points = late_event_tradeoff(arrivals, waits=[0.0, 1.0, 3.0])
        late = [p.late_rate for p in points]
        latency = [p.mean_sealing_latency for p in points]
        assert late[0] > late[-1]
        assert latency[0] < latency[-1]
        assert all(l2 <= l1 + 1e-9 for l1, l2 in zip(late, late[1:]))

    def test_huge_wait_loses_nothing(self):
        arrivals = noisy_observations(["a", "b"], 60, seed=4)
        (point,) = late_event_tradeoff(arrivals, waits=[50.0])
        assert point.late_rate == 0.0
        assert point.events_accepted == 120


class TestWatermarkBoundary:
    """Exact-boundary semantics: an event whose delay equals the wait
    arrives when watermark == its timestamp and must still be admitted
    (the wait >= max-delay guarantee of zero lateness depends on it)."""

    def test_event_arriving_exactly_at_seal_time_admitted(self):
        buf = ReorderBuffer(wait=1.0)
        # Arrival 1.0 puts the watermark at exactly 0.0 == the event's
        # own timestamp: strictly-below sealing must NOT seal it yet.
        sealed = buf.offer(arr(0.0, "a", "on-time", arrival=1.0))
        assert sealed == []
        assert buf.watermark == 0.0
        assert buf.accepted == 1
        assert buf.late_count == 0
        # A same-timestamp sibling arriving while watermark == ts is
        # still admitted into the open snapshot, not counted late.
        assert buf.offer(arr(0.0, "b", "sibling", arrival=1.0)) == []
        assert buf.accepted == 2
        assert buf.late_count == 0
        # Only a *later* arrival pushes the watermark past 0 and seals
        # the complete two-source snapshot.
        sealed = buf.offer(arr(2.0, "a", "next", arrival=3.0))
        assert [p.timestamp for p in sealed] == [0.0]
        assert sealed[0].values == {"a": "on-time", "b": "sibling"}

    def test_boundary_timestamp_equal_to_sealed_upto_is_late(self):
        buf = ReorderBuffer(wait=1.0)
        buf.offer(arr(0.0, "a", 1, arrival=0.5))
        sealed = buf.offer(arr(2.0, "a", 2, arrival=3.5))  # watermark 2.5
        assert [p.timestamp for p in sealed] == [0.0, 2.0]
        # ts == sealed_upto (2.0): exactly on the boundary -> late.
        buf.offer(arr(2.0, "b", 3, arrival=3.6))
        assert buf.late_count == 1
        assert buf.late_events[0].event.value == 3

    def test_wait_zero_late_counting(self):
        # wait=0: the watermark IS the max arrival time, so any event
        # whose timestamp trails a sealed sibling's is counted late.
        buf = ReorderBuffer(wait=0.0)
        assert buf.offer(arr(0.0, "a", 1, arrival=0.0)) == []
        # Arrival 1.0 moves the watermark to 1.0: ts 0.0 seals.
        sealed = buf.offer(arr(1.0, "a", 2, arrival=1.0))
        assert [p.timestamp for p in sealed] == [0.0]
        # Out-of-order straggler for the sealed instant: late, excluded.
        assert buf.offer(arr(0.0, "b", 9, arrival=1.5)) == []
        assert buf.late_count == 1
        assert buf.accepted == 2
        # The sealed phase was not revised to include the straggler.
        assert sealed[0].values == {"a": 1}
        # Pending ts 1.0 is untouched by lateness bookkeeping: flushing
        # recovers it.
        flushed = buf.flush()
        assert [p.timestamp for p in flushed] == [1.0]

    def test_flush_then_offer_counts_late(self):
        """After flush() the stream is closed: a straggler must be
        recorded late, seal nothing, and not resurrect phase numbering."""
        buf = ReorderBuffer(wait=1.0)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        flushed = buf.flush()
        assert [p.timestamp for p in flushed] == [0.0]
        assert buf.offer(arr(3.0, "b", 2, arrival=3.0)) == []
        assert buf.late_count == 1
        assert buf.accepted == 1
        # Phase numbering is undisturbed: a second flush seals nothing.
        assert buf.flush() == []
        assert buf._next_phase == 2

    def test_flush_on_empty_buffer(self):
        buf = ReorderBuffer(wait=1.0)
        assert buf.flush() == []
        # Even with nothing ever offered, post-flush offers are late.
        assert buf.offer(arr(0.0, "a", 1, arrival=0.5)) == []
        assert buf.late_count == 1

    def test_wait_zero_simultaneous_arrivals_not_late(self):
        # With wait=0 an event arriving exactly when the watermark
        # reaches its timestamp (delay 0, perfectly on time) is still
        # admitted: sealing is strictly below the watermark.
        buf = ReorderBuffer(wait=0.0)
        assert buf.offer(arr(1.0, "a", "x", arrival=1.0)) == []
        assert buf.offer(arr(1.0, "b", "y", arrival=1.0)) == []
        assert buf.late_count == 0
        sealed = buf.flush()
        assert [p.timestamp for p in sealed] == [1.0]
        assert sealed[0].values == {"a": "x", "b": "y"}


class TestBoundedBuffer:
    """max_buffered: the serve layer's ingest backpressure seam."""

    def test_new_bin_past_cap_rejected(self):
        buf = ReorderBuffer(wait=10.0, max_buffered=2)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        buf.offer(arr(1.0, "a", 2, arrival=1.1))
        with pytest.raises(BackpressureError):
            buf.offer(arr(2.0, "a", 3, arrival=2.1))
        # Nothing about the rejected offer was recorded.
        assert buf.accepted == 2
        assert buf.late_count == 0
        assert buf.pending_bins == 2

    def test_existing_bin_accepts_at_cap(self):
        buf = ReorderBuffer(wait=10.0, max_buffered=2)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        buf.offer(arr(1.0, "a", 2, arrival=1.1))
        # Same bins, different sources: no new bin, always admitted.
        buf.offer(arr(0.0, "b", 3, arrival=1.2))
        buf.offer(arr(1.0, "b", 4, arrival=1.3))
        assert buf.accepted == 4
        assert buf.pending_bins == 2

    def test_half_up_binning_at_the_cap(self):
        # quantum=1.0 bins half-up: ts 1.49 joins bin 1.0 (admitted at
        # the cap), ts 1.5 opens bin 2.0 (rejected at the cap).
        buf = ReorderBuffer(wait=10.0, quantum=1.0, max_buffered=2)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        buf.offer(arr(1.0, "a", 2, arrival=1.1))
        buf.offer(arr(1.49, "b", 3, arrival=1.6))  # bin 1.0: existing
        assert buf.pending_bins == 2
        with pytest.raises(BackpressureError):
            buf.offer(arr(1.5, "c", 4, arrival=1.6))  # bin 2.0: new
        sealed = buf.flush()
        assert [p.timestamp for p in sealed] == [0.0, 1.0]
        assert sealed[1].values == {"a": 2, "b": 3}

    def test_late_events_never_backpressured(self):
        buf = ReorderBuffer(wait=0.0, max_buffered=1)
        buf.offer(arr(0.0, "a", 1, arrival=0.0))
        sealed = buf.advance_watermark(0.5)
        assert [p.timestamp for p in sealed] == [0.0]
        buf.offer(arr(1.0, "a", 2, arrival=1.0))  # buffer full again
        # Straggler for the sealed instant: the late path runs before
        # the capacity check, so a full buffer never rejects it.
        assert buf.offer(arr(0.0, "b", 9, arrival=1.5)) == []
        assert buf.late_count == 1
        assert buf.accepted == 2

    def test_sealing_frees_capacity(self):
        buf = ReorderBuffer(wait=0.5, max_buffered=1)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        with pytest.raises(BackpressureError):
            buf.offer(arr(1.0, "a", 2, arrival=1.1))
        # Advancing the watermark seals bin 0.0; the next bin fits.
        sealed = buf.advance_watermark(1.0)
        assert [p.timestamp for p in sealed] == [0.0]
        assert buf.offer(arr(1.0, "a", 2, arrival=1.2)) == []
        assert buf.pending_bins == 1

    def test_rejected_offer_can_be_retried(self):
        buf = ReorderBuffer(wait=0.5, max_buffered=1)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))
        ev = arr(1.0, "a", 2, arrival=1.2)
        with pytest.raises(BackpressureError):
            buf.offer(ev)
        buf.advance_watermark(1.0)
        # The identical event object is admitted after drain: rejection
        # left no trace.
        assert buf.offer(ev) == []
        assert buf.accepted == 2

    def test_max_late_kept_caps_retention_not_count(self):
        buf = ReorderBuffer(wait=0.0, max_late_kept=2)
        buf.offer(arr(0.0, "a", 1, arrival=0.0))
        buf.offer(arr(5.0, "a", 2, arrival=5.0))  # seals ts 0.0
        for i in range(5):
            buf.offer(arr(0.0, f"s{i}", i, arrival=6.0 + i))
        assert buf.late_count == 5
        assert len(buf.late_events) == 2
        # The retained sample is the earliest stragglers, not the last.
        assert [a.event.source for a in buf.late_events] == ["s0", "s1"]

    def test_max_late_kept_zero_keeps_nothing(self):
        buf = ReorderBuffer(wait=0.0, max_late_kept=0)
        buf.offer(arr(0.0, "a", 1, arrival=0.0))
        buf.offer(arr(5.0, "a", 2, arrival=5.0))
        buf.offer(arr(0.0, "b", 3, arrival=6.0))
        assert buf.late_count == 1
        assert buf.late_events == []

    def test_invalid_caps_rejected(self):
        with pytest.raises(WorkloadError):
            ReorderBuffer(wait=1.0, max_buffered=0)
        with pytest.raises(WorkloadError):
            ReorderBuffer(wait=1.0, max_late_kept=-1)


class TestAdvanceWatermark:
    def test_advance_seals_strictly_below(self):
        buf = ReorderBuffer(wait=10.0)  # offers alone seal nothing
        buf.offer(arr(0.0, "a", 1, arrival=0.0))
        buf.offer(arr(1.0, "a", 2, arrival=1.0))
        sealed = buf.advance_watermark(1.0)
        # Sealing is strictly below the watermark: bin 1.0 stays open.
        assert [p.timestamp for p in sealed] == [0.0]
        assert buf.pending_bins == 1
        assert buf.advance_watermark(1.0 + 1e-9)[0].timestamp == 1.0

    def test_advance_never_moves_backwards(self):
        buf = ReorderBuffer(wait=0.0)
        buf.offer(arr(0.0, "a", 1, arrival=0.0))
        buf.advance_watermark(5.0)
        assert buf.advance_watermark(1.0) == []
        assert buf.watermark == 5.0

    def test_advance_sets_watermark_directly(self):
        # advance_watermark(to) takes the watermark itself — the caller
        # subtracts its own wait ("it is now t, seal below t - wait").
        # It is not re-discounted by the buffer's wait.
        buf = ReorderBuffer(wait=2.0)
        buf.offer(arr(0.0, "a", 1, arrival=0.1))  # watermark -1.9
        assert buf.advance_watermark(0.0) == []
        sealed = buf.advance_watermark(0.5)
        assert [p.timestamp for p in sealed] == [0.0]
        assert buf.watermark == 0.5
