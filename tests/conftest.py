"""Shared test fixtures and helpers."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import pytest

from repro.core.program import Program, RunResult
from repro.core.vertex import (
    EMIT_NOTHING,
    FunctionVertex,
    SourceVertex,
    Vertex,
    VertexContext,
)
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph


# ---------------------------------------------------------------------------
# Single-vertex driver: run a behaviour through scripted phases without an
# engine, for focused model tests.
# ---------------------------------------------------------------------------


class VertexHarness:
    """Drives one Vertex through phases with scripted inputs.

    ``step(phase, changed={...}, latched={...}, phase_input=...)`` executes
    one phase and returns ``(outputs, records, returned_emission)`` where
    *returned_emission* is the broadcast value (or None when silent).
    """

    def __init__(
        self,
        vertex: Vertex,
        successors: Sequence[str] = ("out",),
        name: str = "v",
    ) -> None:
        self.vertex = vertex
        self.successors = list(successors)
        self.name = name
        self.latched: Dict[str, Any] = {}

    def step(
        self,
        phase: int,
        changed: Optional[Mapping[str, Any]] = None,
        phase_input: Any = None,
    ) -> Tuple[Dict[str, Any], List[Any], Any]:
        changed = dict(changed or {})
        self.latched.update(changed)
        ctx = VertexContext(
            name=self.name,
            phase=phase,
            inputs=self.latched,
            changed=set(changed),
            successors=self.successors,
            phase_input=phase_input,
        )
        returned = self.vertex.on_execute(ctx)
        ctx.finish(returned)
        broadcast = None
        if ctx.outputs and all(
            ctx.outputs.get(s) == next(iter(ctx.outputs.values()))
            for s in ctx.outputs
        ):
            broadcast = next(iter(ctx.outputs.values())) if ctx.outputs else None
        return dict(ctx.outputs), list(ctx.records), broadcast

    def emissions(
        self, steps: Iterable[Tuple[int, Optional[Mapping[str, Any]]]]
    ) -> List[Any]:
        """Run several steps; collect the broadcast value per step (None
        when silent)."""
        out = []
        for phase, changed in steps:
            outputs, _records, broadcast = self.step(phase, changed)
            out.append(broadcast if outputs else None)
        return out


@pytest.fixture
def harness():
    return VertexHarness


# ---------------------------------------------------------------------------
# Tiny reusable programs
# ---------------------------------------------------------------------------


class ScriptedSource(SourceVertex):
    """Emits ``script[phase]`` when present (for exact-value tests)."""

    def __init__(self, script: Mapping[int, Any]) -> None:
        super().__init__(seed=None)
        self.script = dict(script)

    def on_execute(self, ctx: VertexContext) -> Any:
        if ctx.phase in self.script:
            return self.script[ctx.phase]
        return EMIT_NOTHING


def _forward(ctx: VertexContext) -> Any:
    # Module-level so FunctionVertex(_forward) stays picklable (the
    # process backend ships behaviours to worker processes).
    vals = ctx.changed_values()
    if not vals:
        return EMIT_NOTHING
    (value,) = vals.values()
    return value


def forward_vertex() -> FunctionVertex:
    """Forwards the single changed input (silent otherwise)."""
    return FunctionVertex(_forward)


def sum_vertex() -> FunctionVertex:
    """Sums latched inputs whenever anything changes."""

    def f(ctx: VertexContext) -> Any:
        if not ctx.changed:
            return EMIT_NOTHING
        return sum(ctx.inputs.values())

    return FunctionVertex(f)


def make_chain_program(depth: int, script: Mapping[int, Any]) -> Program:
    """source -> fwd -> ... -> fwd (depth vertices total)."""
    g = ComputationGraph(name=f"chain{depth}")
    names = [f"n{i}" for i in range(depth)]
    g.add_vertices(names)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b)
    behaviors: Dict[str, Vertex] = {names[0]: ScriptedSource(script)}
    for n in names[1:]:
        behaviors[n] = forward_vertex()
    return Program(g, behaviors)


def signals(n: int) -> List[PhaseInput]:
    return [PhaseInput(k, float(k)) for k in range(1, n + 1)]


@pytest.fixture
def chain_program():
    return make_chain_program


@pytest.fixture
def phase_signals_fixture():
    return signals
