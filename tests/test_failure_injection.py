"""Failure injection across engines: vertex exceptions must surface as
typed errors from every engine, leaving no silent corruption."""

import pytest

from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import FunctionVertex, PassthroughSource, SourceVertex
from repro.errors import VertexExecutionError
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph
from repro.runtime.engine import ParallelEngine
from repro.simulator.machine import SimulatedEngine

from tests.conftest import signals


def failing_program(fail_phase: int = 2) -> Program:
    g = ComputationGraph.from_edges([("src", "mid"), ("mid", "out")])

    def mid(ctx):
        if ctx.phase == fail_phase:
            raise RuntimeError("injected failure")
        return ctx.input("src")

    class Chatty(SourceVertex):
        def on_execute(self, ctx):
            return ctx.phase

    return Program(
        g,
        {
            "src": Chatty(),
            "mid": FunctionVertex(mid),
            "out": FunctionVertex(lambda ctx: ctx.input("mid")),
        },
    )


class TestSerialFailure:
    def test_raises_typed_error(self):
        prog = failing_program()
        with pytest.raises(VertexExecutionError) as ei:
            SerialExecutor(prog).run(signals(5))
        assert ei.value.vertex == "mid"
        assert ei.value.phase == 2
        assert isinstance(ei.value.__cause__, RuntimeError)


class TestParallelFailure:
    @pytest.mark.parametrize("threads", [1, 4])
    def test_raises_and_terminates(self, threads):
        prog = failing_program()
        engine = ParallelEngine(prog, num_threads=threads, join_timeout=30)
        with pytest.raises(VertexExecutionError, match="injected failure"):
            engine.run(signals(5))

    def test_failure_on_first_phase(self):
        prog = failing_program(fail_phase=1)
        with pytest.raises(VertexExecutionError):
            ParallelEngine(prog, num_threads=2, join_timeout=30).run(signals(3))

    def test_failure_on_last_phase(self):
        prog = failing_program(fail_phase=5)
        with pytest.raises(VertexExecutionError):
            ParallelEngine(prog, num_threads=2, join_timeout=30).run(signals(5))


class TestSimulatedFailure:
    def test_raises_from_run(self):
        prog = failing_program()
        with pytest.raises(VertexExecutionError, match="injected failure"):
            SimulatedEngine(prog, num_workers=2).run(signals(5))


class TestShardedFailure:
    def test_raises_from_run(self):
        # Two independent failing chains: key-separable, so the sharded
        # meta-engine accepts it and must surface the inner failure.
        from repro.sharding import ShardedEngine, key_by_bracket

        g = ComputationGraph.from_edges(
            [("src[a]", "mid[a]"), ("src[b]", "mid[b]")]
        )

        def fail_on_2(ctx):
            if ctx.phase == 2:
                raise RuntimeError("injected failure")
            return ctx.changed and 1

        class Chatty(SourceVertex):
            def on_execute(self, ctx):
                return ctx.phase

        prog = Program(
            g,
            {
                "src[a]": Chatty(),
                "mid[a]": FunctionVertex(fail_on_2),
                "src[b]": Chatty(),
                "mid[b]": FunctionVertex(lambda c: c.input("src[b]")),
            },
        )
        engine = ShardedEngine(prog, key_by_bracket, 2)
        with pytest.raises(VertexExecutionError, match="injected failure"):
            engine.run(signals(5))


class TestSourceFailure:
    def test_failing_source(self):
        g = ComputationGraph.from_edges([("src", "out")])

        class Boom(PassthroughSource):
            def on_execute(self, ctx):
                if ctx.phase == 3:
                    raise ValueError("sensor offline")
                return ctx.phase

        prog = Program(
            g, {"src": Boom(), "out": FunctionVertex(lambda c: c.input("src"))}
        )
        for engine in (
            SerialExecutor(prog),
            ParallelEngine(prog, num_threads=2, join_timeout=30),
            SimulatedEngine(prog, num_workers=2),
        ):
            with pytest.raises(VertexExecutionError, match="sensor offline"):
                engine.run(signals(4))
