"""Tests for the phase-barrier baselines (no pipelining)."""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.baselines.barrier import (
    barrier_parallel_engine,
    barrier_simulated_engine,
)
from repro.core.serial import SerialExecutor
from repro.core.tracer import ExecutionTracer, max_concurrent_phases
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.streams.workloads import grid_workload, pipeline_workload


class TestThreadedBarrier:
    def test_matches_serial(self):
        prog, phases = grid_workload(3, 3, phases=20, seed=12)
        serial = SerialExecutor(prog).run(phases)
        res = barrier_parallel_engine(prog, num_threads=3).run(phases)
        assert_serializable(serial, res)


class TestSimulatedBarrier:
    def test_matches_serial(self):
        prog, phases = grid_workload(3, 3, phases=15, seed=13)
        serial = SerialExecutor(prog).run(phases)
        res = barrier_simulated_engine(prog, num_workers=3).run(phases)
        assert_serializable(serial, res)

    def test_barrier_never_overlaps_phases(self):
        prog, phases = pipeline_workload(depth=5, phases=10)
        tracer = ExecutionTracer()
        cm = CostModel(compute_cost=1.0)
        barrier_simulated_engine(
            prog, num_workers=4, num_processors=4, cost_model=cm, tracer=tracer
        ).run(phases)
        assert max_concurrent_phases(tracer.intervals()) == 1

    def test_pipelined_beats_barrier_on_deep_graphs(self):
        """The Section 2 claim: pipelining is 'more efficient' than the
        phase-barrier solution.  On a deep chain with ample workers the
        gap approaches the depth."""
        prog, phases = pipeline_workload(depth=8, phases=40)
        cm = CostModel(compute_cost=1.0, bookkeeping_cost=0.01)
        pipe = SimulatedEngine(
            prog, num_workers=8, num_processors=8, cost_model=cm
        ).run(phases)
        barr = barrier_simulated_engine(
            prog, num_workers=8, num_processors=8, cost_model=cm
        ).run(phases)
        assert pipe.records == barr.records
        assert barr.wall_time / pipe.wall_time > 3.0

    def test_barrier_no_worse_on_wide_shallow_graphs(self):
        """On a wide, shallow graph a barrier loses little: intra-phase
        parallelism already fills the machine."""
        prog, phases = grid_workload(8, 2, phases=20, seed=14)
        cm = CostModel(compute_cost=1.0, bookkeeping_cost=0.01)
        pipe = SimulatedEngine(
            prog, num_workers=4, num_processors=4, cost_model=cm
        ).run(phases)
        barr = barrier_simulated_engine(
            prog, num_workers=4, num_processors=4, cost_model=cm
        ).run(phases)
        assert barr.wall_time / pipe.wall_time < 2.0
