"""Tests for the dense dataflow baseline — the paper's rejected
"obvious solution" and the message-rate comparison it motivates."""

import pytest

from repro.baselines.dense import DenseDataflowExecutor
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import EMIT_NOTHING, FunctionVertex, SourceVertex
from repro.events import PhaseInput
from repro.graph.generators import chain_graph
from repro.models.domains.laundering import build_laundering_workload

from tests.conftest import ScriptedSource, signals


class RareSource(SourceVertex):
    """Emits once every `period` phases (sparse Δ source)."""

    def __init__(self, period: int) -> None:
        super().__init__(seed=None)
        self.period = period

    def on_execute(self, ctx):
        if ctx.phase % self.period == 0:
            return ctx.phase
        return EMIT_NOTHING


def value_forward() -> FunctionVertex:
    """Forwards the latched value (value-driven, Δ-well-formed)."""

    def f(ctx):
        if not ctx.changed:
            return EMIT_NOTHING
        (name,) = list(ctx.changed)[:1] or [None]
        return ctx.inputs[name]

    return FunctionVertex(f)


class TestDenseSemantics:
    def test_every_vertex_executes_every_phase(self):
        g = chain_graph(4)
        prog = Program(
            g,
            {"v1": RareSource(10)}
            | {f"v{i}": value_forward() for i in range(2, 5)},
        )
        res = DenseDataflowExecutor(prog).run(signals(20))
        assert res.execution_count == 4 * 20
        assert res.engine == "dense"

    def test_messages_on_every_edge_after_first_value(self):
        g = chain_graph(3)
        prog = Program(
            g,
            {"v1": ScriptedSource({1: "x"})}
            | {f"v{i}": value_forward() for i in (2, 3)},
        )
        res = DenseDataflowExecutor(prog).run(signals(10))
        # Edge v1->v2 carries a message every phase from 1 on (re-sends);
        # v2->v3 likewise.  Total = 2 edges x 10 phases.
        assert res.message_count == 2 * 10

    def test_silent_edges_stay_silent_until_first_value(self):
        g = chain_graph(2)
        prog = Program(
            g, {"v1": RareSource(5), "v2": value_forward()}
        )
        res = DenseDataflowExecutor(prog).run(signals(10))
        # First emission at phase 5; re-sent phases 6..10 -> 6 messages.
        assert res.message_count == 6


class TestMessageRateComparison:
    def test_dense_rate_dominates_delta_rate(self):
        """The Section 1 comparison on the laundering workload: option 1's
        message count exceeds option 2's roughly in proportion to
        1/anomaly-rate on the detector stage."""
        prog_delta, phases = build_laundering_workload(
            phases=600, branches=2, anomaly_rate=0.01, seed=3
        )
        prog_dense, _ = build_laundering_workload(
            phases=600, branches=2, anomaly_rate=0.01, seed=3, dense=True
        )
        delta = SerialExecutor(prog_delta).run(phases)
        dense = SerialExecutor(prog_dense).run(phases)
        # Same anomaly decisions -> same compliance cases.
        assert delta.records == dense.records
        # Dense detectors emit every phase; delta detectors only on
        # anomalies, so message traffic collapses.
        assert dense.message_count > delta.message_count * 1.3

    def test_dense_executor_on_delta_program_counts_work(self):
        prog, phases = build_laundering_workload(
            phases=200, branches=2, anomaly_rate=0.02, seed=5
        )
        delta = SerialExecutor(prog).run(phases)
        dense = DenseDataflowExecutor(prog).run(phases)
        assert dense.execution_count == prog.n * 200
        assert dense.execution_count > delta.execution_count
