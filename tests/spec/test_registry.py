"""Tests for the vertex-class registry."""

import pytest

from repro.core.vertex import Vertex
from repro.errors import RegistryError
from repro.spec.registry import VertexRegistry, default_registry, register_vertex


class Dummy(Vertex):
    def on_execute(self, ctx):
        return None


class TestRegistry:
    def test_register_and_resolve(self):
        reg = VertexRegistry()
        reg.register("Dummy", Dummy)
        assert reg.resolve("Dummy") is Dummy
        assert "Dummy" in reg

    def test_reregister_same_class_ok(self):
        reg = VertexRegistry()
        reg.register("Dummy", Dummy)
        reg.register("Dummy", Dummy)

    def test_conflicting_registration_rejected(self):
        reg = VertexRegistry()
        reg.register("Name", Dummy)

        class Other(Vertex):
            def on_execute(self, ctx):
                return None

        with pytest.raises(RegistryError, match="already registered"):
            reg.register("Name", Other)

    def test_non_vertex_rejected(self):
        reg = VertexRegistry()
        with pytest.raises(RegistryError):
            reg.register("X", int)  # type: ignore[arg-type]

    def test_unknown_short_name(self):
        reg = VertexRegistry()
        with pytest.raises(RegistryError, match="unknown vertex class"):
            reg.resolve("Nope")

    def test_dotted_path_resolution(self):
        reg = VertexRegistry()
        cls = reg.resolve("repro.models.basic.Identity")
        from repro.models.basic import Identity

        assert cls is Identity

    def test_dotted_path_bad_module(self):
        reg = VertexRegistry()
        with pytest.raises(RegistryError, match="cannot import"):
            reg.resolve("no.such.module.Cls")

    def test_dotted_path_bad_attribute(self):
        reg = VertexRegistry()
        with pytest.raises(RegistryError, match="no attribute"):
            reg.resolve("repro.models.basic.Missing")

    def test_dotted_path_non_vertex(self):
        reg = VertexRegistry()
        with pytest.raises(RegistryError, match="not a Vertex"):
            reg.resolve("repro.graph.model.ComputationGraph")

    def test_iteration_sorted(self):
        reg = VertexRegistry()
        reg.register("B", Dummy)
        reg.register("A", Dummy)
        assert list(reg) == ["A", "B"]
        assert reg.names() == ["A", "B"]


class TestDefaultRegistry:
    def test_model_classes_registered(self):
        # Importing repro.models registers the library classes.
        import repro.models  # noqa: F401

        for name in (
            "Identity",
            "MovingAverage",
            "ZScoreDetector",
            "Threshold",
            "RandomWalkSensor",
            "Recorder",
        ):
            assert name in default_registry, name

    def test_decorator_registers(self):
        @register_vertex("TestOnlyVertex_xyz")
        class TestOnly(Vertex):
            def on_execute(self, ctx):
                return None

        assert default_registry.resolve("TestOnlyVertex_xyz") is TestOnly
