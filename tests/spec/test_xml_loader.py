"""Tests for XML computation specifications."""

import pytest

from repro.core.serial import SerialExecutor
from repro.errors import SpecError
from repro.spec.xml_loader import dumps_spec, load_spec, loads_spec, save_spec

VALID = """
<computation name="demo">
  <graph>
    <vertex id="temp" class="RandomWalkSensor">
      <param name="seed" value="42" type="int"/>
      <param name="start" value="15.0" type="float"/>
    </vertex>
    <vertex id="avg" class="MovingAverage">
      <param name="window" value="5" type="int"/>
    </vertex>
    <vertex id="log" class="Recorder"/>
    <edge from="temp" to="avg"/>
    <edge from="avg" to="log"/>
  </graph>
  <simulation timesteps="20" interval="2.0" seed="9"/>
</computation>
"""


class TestLoading:
    def test_valid_spec_parses(self):
        spec = loads_spec(VALID)
        assert spec.name == "demo"
        assert spec.timesteps == 20
        assert spec.interval == 2.0
        assert spec.seed == 9
        assert spec.program.graph.num_vertices == 3
        assert spec.vertex_classes["avg"] == "MovingAverage"
        assert spec.vertex_params["temp"] == {"seed": 42, "start": 15.0}

    def test_phase_inputs(self):
        spec = loads_spec(VALID)
        phases = spec.phase_inputs()
        assert len(phases) == 20
        assert phases[0].phase == 1
        assert phases[1].timestamp == 2.0

    def test_spec_runs(self):
        spec = loads_spec(VALID)
        res = SerialExecutor(spec.program).run(spec.phase_inputs())
        assert res.execution_count == 60  # chatty source: everything fires
        assert len(res.records["log"]) == 20

    def test_explicit_seed_not_overridden(self):
        spec = loads_spec(VALID)
        assert spec.program.behaviors["temp"].seed == 42

    def test_global_seed_derives_source_seeds(self):
        xml = VALID.replace(
            '<param name="seed" value="42" type="int"/>', ""
        )
        spec1 = loads_spec(xml)
        spec2 = loads_spec(xml)
        seed = spec1.program.behaviors["temp"].seed
        assert seed is not None and seed != 9  # derived, not the raw seed
        assert spec2.program.behaviors["temp"].seed == seed  # stable

    def test_dotted_class_path(self):
        xml = VALID.replace(
            'class="MovingAverage"', 'class="repro.models.statistics.MovingAverage"'
        )
        spec = loads_spec(xml)
        from repro.models.statistics import MovingAverage

        assert isinstance(spec.program.behaviors["avg"], MovingAverage)

    def test_bool_and_json_params(self):
        xml = """
        <computation name="p">
          <graph>
            <vertex id="r" class="ReplaySource">
              <param name="values" value="[1, null, 3]" type="json"/>
            </vertex>
          </graph>
          <simulation timesteps="3"/>
        </computation>
        """
        spec = loads_spec(xml)
        assert spec.program.behaviors["r"].values == [1, None, 3]


class TestRejections:
    def test_malformed_xml(self):
        with pytest.raises(SpecError, match="malformed"):
            loads_spec("<computation><oops")

    def test_wrong_root(self):
        with pytest.raises(SpecError, match="root element"):
            loads_spec("<other/>")

    def test_missing_graph(self):
        with pytest.raises(SpecError, match="graph"):
            loads_spec('<computation name="x"/>')

    def test_vertex_without_id(self):
        with pytest.raises(SpecError, match="id"):
            loads_spec(
                '<computation><graph><vertex class="Recorder"/></graph></computation>'
            )

    def test_vertex_without_class(self):
        with pytest.raises(SpecError, match="class"):
            loads_spec(
                '<computation><graph><vertex id="v"/></graph></computation>'
            )

    def test_unknown_param_type(self):
        xml = """
        <computation><graph>
          <vertex id="v" class="Recorder">
            <param name="x" value="1" type="complex"/>
          </vertex>
        </graph></computation>"""
        with pytest.raises(SpecError, match="unknown type"):
            loads_spec(xml)

    def test_unparseable_param_value(self):
        xml = """
        <computation><graph>
          <vertex id="v" class="Recorder">
            <param name="x" value="abc" type="int"/>
          </vertex>
        </graph></computation>"""
        with pytest.raises(SpecError, match="cannot parse"):
            loads_spec(xml)

    def test_bad_constructor_args(self):
        xml = """
        <computation><graph>
          <vertex id="v" class="MovingAverage">
            <param name="nonexistent" value="1" type="int"/>
          </vertex>
        </graph></computation>"""
        with pytest.raises(SpecError, match="cannot construct"):
            loads_spec(xml)

    def test_edge_missing_endpoint(self):
        xml = """
        <computation><graph>
          <vertex id="v" class="Recorder"/>
          <edge from="v"/>
        </graph><simulation timesteps="1"/></computation>"""
        with pytest.raises(SpecError, match="edge"):
            loads_spec(xml)

    def test_negative_timesteps(self):
        xml = VALID.replace('timesteps="20"', 'timesteps="-3"')
        with pytest.raises(SpecError, match="timesteps"):
            loads_spec(xml)

    def test_file_not_found(self, tmp_path):
        with pytest.raises(SpecError, match="not found"):
            load_spec(tmp_path / "missing.xml")


class TestRoundTrip:
    def test_dumps_loads_identical_behaviour(self):
        spec = loads_spec(VALID)
        spec2 = loads_spec(dumps_spec(spec))
        r1 = SerialExecutor(spec.program).run(spec.phase_inputs())
        r2 = SerialExecutor(spec2.program).run(spec2.phase_inputs())
        assert r1.records == r2.records
        assert spec2.timesteps == spec.timesteps
        assert spec2.seed == spec.seed

    def test_save_and_load_file(self, tmp_path):
        spec = loads_spec(VALID)
        path = tmp_path / "spec.xml"
        save_spec(spec, path)
        spec2 = load_spec(path)
        assert spec2.name == "demo"
        assert spec2.vertex_params["temp"]["seed"] == 42
