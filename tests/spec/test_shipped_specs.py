"""The XML specs shipped in specs/ must load, validate, and run
serializably on every engine — they are the first thing a new user tries."""

from pathlib import Path

import pytest

from repro.analysis.serializability import assert_serializable
from repro.cli import main
from repro.core.serial import SerialExecutor
from repro.runtime.engine import ParallelEngine
from repro.spec import load_spec

SPEC_DIR = Path(__file__).resolve().parents[2] / "specs"
SPEC_FILES = sorted(SPEC_DIR.glob("*.xml"))


def test_specs_shipped():
    assert len(SPEC_FILES) >= 3


@pytest.mark.parametrize("path", SPEC_FILES, ids=lambda p: p.stem)
class TestShippedSpecs:
    def test_loads_and_validates(self, path):
        spec = load_spec(path)
        spec.program.graph.validate()
        assert spec.timesteps > 0

    def test_runs_serializably(self, path):
        spec = load_spec(path)
        # Trim long specs so the suite stays fast.
        phases = spec.phase_inputs()[:150]
        serial = SerialExecutor(spec.program).run(phases)
        par = ParallelEngine(spec.program, num_threads=2).run(phases)
        assert_serializable(serial, par)
        assert serial.execution_count > 0

    def test_cli_validate(self, path, capsys):
        assert main(["validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out


class TestSpecContent:
    def test_anomaly_watch_produces_cases(self):
        spec = load_spec(SPEC_DIR / "anomaly_watch.xml")
        res = SerialExecutor(spec.program).run(spec.phase_inputs())
        assert len(res.records.get("compliance", [])) > 0

    def test_plant_monitor_records_transitions(self):
        spec = load_spec(SPEC_DIR / "plant_monitor.xml")
        res = SerialExecutor(spec.program).run(spec.phase_inputs())
        assert len(res.records.get("control_room", [])) > 0

    def test_correlation_watch_correlates(self):
        spec = load_spec(SPEC_DIR / "correlation_watch.xml")
        res = SerialExecutor(spec.program).run(spec.phase_inputs())
        # Coupled diurnal signals: the decoupling alarm reports False and
        # stays there (possibly flapping early while the window fills).
        log = res.records.get("watch_desk", [])
        assert log
        assert log[-1][1][1] is False
