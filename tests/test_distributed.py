"""Tests for the distributed extensions (Section 6 future work):
pipeline partitioning + simulated cluster, and sink replication."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.serial import SerialExecutor
from repro.distributed import (
    MachineConfig,
    PartitionedProgram,
    SimulatedCluster,
    ancestor_closure,
    contiguous_partition,
    replicate_by_sinks,
)
from repro.errors import WorkloadError
from repro.graph.generators import chain_graph, random_dag
from repro.graph.numbering import number_graph, verify_numbering
from repro.models.domains.laundering import build_laundering_workload
from repro.simulator.costs import CostModel
from repro.streams.workloads import (
    fanin_workload,
    grid_workload,
    pipeline_workload,
)

from tests.conftest import make_chain_program, signals


class TestContiguousPartition:
    def test_blocks_cover_and_order(self):
        prog, _ = grid_workload(3, 4, phases=1)
        part = contiguous_partition(prog.numbering, 3)
        names = [v for block in part.blocks for v in block]
        assert names == prog.numbering.names_in_order()
        assert part.num_machines == 3

    def test_cut_edges_flow_forward(self):
        prog, _ = grid_workload(4, 4, phases=1, seed=2)
        part = contiguous_partition(prog.numbering, 4)
        for sm, _src, dm, _dst in part.cut_edges:
            assert sm < dm

    def test_sources_on_machine_zero(self):
        prog, _ = fanin_workload(fan=6, phases=1)
        part = contiguous_partition(prog.numbering, 2)
        for s in prog.graph.sources():
            assert part.machine_of(s) == 0

    def test_balance_metric(self):
        prog, _ = pipeline_workload(depth=9, phases=1)
        part = contiguous_partition(prog.numbering, 3)
        assert part.balance() == 1.0

    def test_too_many_machines(self):
        prog, _ = pipeline_workload(depth=3, phases=1)
        with pytest.raises(WorkloadError):
            contiguous_partition(prog.numbering, 4)

    def test_one_machine_no_cuts(self):
        prog, _ = grid_workload(3, 3, phases=1)
        part = contiguous_partition(prog.numbering, 1)
        assert part.cut_size == 0

    def test_unsplittable_source_block(self):
        # 6 sources and 7 vertices cannot yield 3 non-empty blocks with
        # all sources on machine 0... actually 6+1 can't make 3 blocks.
        prog, _ = fanin_workload(fan=6, phases=1)
        with pytest.raises(WorkloadError):
            contiguous_partition(prog.numbering, 3)


class TestPartitionedProgram:
    def test_local_programs_are_valid_and_numbered(self):
        prog, _ = grid_workload(3, 4, phases=1, seed=4)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 3))
        for local in pp.locals:
            local.graph.validate()
            verify_numbering(local.graph, local.numbering.index_of)

    def test_proxy_and_stub_naming_transparent(self):
        prog, _ = pipeline_workload(depth=4, phases=1)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 2))
        # The cut edge v2->v3: machine 0 gains stub "v3", machine 1 gains
        # proxy "v2" — both under original names.
        assert "v3" in pp.locals[0].graph
        assert "v2" in pp.locals[1].graph
        assert pp.plumbing[0] == {"v3"}
        assert pp.plumbing[1] == {"v2"}
        assert pp.consumer_machine == {"v3": 1}

    def test_upstream_sets(self):
        prog, _ = pipeline_workload(depth=6, phases=1)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 3))
        assert pp.upstream[0] == set()
        assert pp.upstream[1] == {0}
        assert pp.upstream[2] == {1}

    def test_mismatched_partition_rejected(self):
        prog1, _ = pipeline_workload(depth=4, phases=1)
        prog2, _ = pipeline_workload(depth=4, phases=1)
        part = contiguous_partition(prog2.numbering, 2)
        with pytest.raises(WorkloadError):
            PartitionedProgram(prog1, part)


class TestSimulatedCluster:
    @pytest.mark.parametrize("machines", [1, 2, 3])
    def test_matches_serial_on_grid(self, machines):
        prog, phases = grid_workload(3, 4, phases=20, seed=6)
        serial = SerialExecutor(prog).run(phases)
        pp = PartitionedProgram(
            prog, contiguous_partition(prog.numbering, machines)
        )
        result = SimulatedCluster(pp, network_latency=0.4).run(phases)
        assert result.merged_records() == serial.records

    def test_matches_serial_on_domain_workload(self):
        prog, phases = build_laundering_workload(
            phases=150, branches=2, anomaly_rate=0.02, seed=8
        )
        serial = SerialExecutor(prog).run(phases)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 2))
        result = SimulatedCluster(pp, network_latency=1.0).run(phases)
        assert result.merged_records() == serial.records

    def test_zero_latency(self):
        prog, phases = pipeline_workload(depth=6, phases=10)
        serial = SerialExecutor(prog).run(phases)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 3))
        result = SimulatedCluster(pp, network_latency=0.0).run(phases)
        assert result.merged_records() == serial.records

    def test_cut_traffic_counted(self):
        prog, phases = pipeline_workload(depth=6, phases=10)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 2))
        result = SimulatedCluster(pp).run(phases)
        # Chatty chain: one cut value and one token per phase.
        assert result.cut_messages == 10
        assert result.tokens_sent == 10

    def test_deep_graph_scales_with_machines(self):
        prog, phases = pipeline_workload(depth=12, phases=40, seed=3)
        cm = CostModel(compute_cost=1.0, bookkeeping_cost=0.01)
        makespans = {}
        for k in (1, 3):
            pp = PartitionedProgram(
                prog, contiguous_partition(prog.numbering, k)
            )
            makespans[k] = SimulatedCluster(
                pp,
                MachineConfig(num_workers=2, num_processors=2),
                cost_model=cm,
                network_latency=0.1,
            ).run(phases).makespan
        assert makespans[3] < makespans[1] * 0.6

    def test_latency_hurts_makespan_not_results(self):
        prog, phases = pipeline_workload(depth=6, phases=15)
        serial = SerialExecutor(prog).run(phases)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 3))
        fast = SimulatedCluster(pp, network_latency=0.1).run(phases)
        slow = SimulatedCluster(pp, network_latency=10.0).run(phases)
        assert slow.makespan > fast.makespan
        assert slow.merged_records() == fast.merged_records() == serial.records

    def test_config_length_mismatch(self):
        prog, phases = pipeline_workload(depth=4, phases=2)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 2))
        with pytest.raises(WorkloadError):
            SimulatedCluster(pp, [MachineConfig()])

    def test_negative_latency_rejected(self):
        prog, phases = pipeline_workload(depth=4, phases=2)
        pp = PartitionedProgram(prog, contiguous_partition(prog.numbering, 2))
        with pytest.raises(WorkloadError):
            SimulatedCluster(pp, network_latency=-1)

    @given(
        st.integers(6, 16),
        st.floats(0.2, 0.7),
        st.integers(0, 10**6),
        st.integers(2, 4),
        st.integers(2, 12),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_cluster_serializable(self, n, density, seed, machines, phases_n):
        from repro.streams.workloads import sum_behaviors
        from repro.core.program import Program
        from repro.streams.generators import phase_signals

        g = random_dag(n, edge_prob=density, seed=seed)
        prog = Program(g, sum_behaviors(g, seed=seed))
        nsources = prog.numbering.num_sources
        machines = min(machines, max(1, n - nsources))
        phases = phase_signals(phases_n)
        serial = SerialExecutor(prog).run(phases)
        part = contiguous_partition(prog.numbering, machines)
        pp = PartitionedProgram(prog, part)
        result = SimulatedCluster(pp, network_latency=0.25).run(phases)
        assert result.merged_records() == serial.records


class TestReplication:
    def test_ancestor_closure(self):
        g = chain_graph(4)
        assert ancestor_closure(g, ["v3"]) == {"v1", "v2", "v3"}

    def test_closure_unknown_target(self):
        with pytest.raises(WorkloadError):
            ancestor_closure(chain_graph(2), ["ghost"])

    def test_union_of_replicas_matches_monolith(self):
        prog, phases = grid_workload(4, 4, phases=20, seed=9)
        serial = SerialExecutor(prog).run(phases)
        sinks = prog.graph.sinks()
        plan = replicate_by_sinks(prog, [[s] for s in sinks])
        combined = {}
        for replica, group in zip(plan.replicas, plan.assignments):
            res = SerialExecutor(replica).run(phases)
            for s in group:
                combined[s] = res.records.get(s, [])
        for s in sinks:
            assert combined[s] == serial.records.get(s, [])

    def test_replicas_are_smaller(self):
        prog, _ = grid_workload(4, 4, phases=1, seed=9)
        plan = replicate_by_sinks(prog, [[s] for s in prog.graph.sinks()])
        assert plan.max_replica_fraction() < 1.0
        assert all(c < prog.n for c in plan.vertex_counts)
        assert plan.duplication_factor > 1.0  # shared ancestors recomputed

    def test_grouped_sinks(self):
        prog, phases = grid_workload(4, 3, phases=10, seed=10)
        sinks = prog.graph.sinks()
        plan = replicate_by_sinks(prog, [sinks[:2], sinks[2:]])
        assert plan.num_replicas == 2
        serial = SerialExecutor(prog).run(phases)
        for replica, group in zip(plan.replicas, plan.assignments):
            res = SerialExecutor(replica).run(phases)
            for s in group:
                assert res.records.get(s, []) == serial.records.get(s, [])

    def test_rejections(self):
        prog, _ = grid_workload(3, 3, phases=1)
        sinks = prog.graph.sinks()
        with pytest.raises(WorkloadError):
            replicate_by_sinks(prog, [])
        with pytest.raises(WorkloadError):
            replicate_by_sinks(prog, [[]])
        with pytest.raises(WorkloadError):
            replicate_by_sinks(prog, [["not-a-sink"]])
        with pytest.raises(WorkloadError):
            replicate_by_sinks(prog, [[sinks[0]], [sinks[0]]])
