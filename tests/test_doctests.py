"""Run the doctests embedded in library docstrings."""

import doctest

import pytest

import repro
import repro.core.pairsets
import repro.core.serial
import repro.events
import repro.graph.model

# Ensure the lazily loaded engines referenced by the package docstring
# example are resolvable before doctest runs it.
repro.ParallelEngine  # noqa: B018


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.events,
        repro.graph.model,
        repro.core.pairsets,
        repro.core.serial,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} should carry doctests"
    assert result.failed == 0
