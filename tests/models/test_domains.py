"""Tests for the four domain compositions.

Each domain gets: structural checks, behavioural sanity (the scenario's
signal is actually detected), and a serializability check across engines.
"""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.invariants import InvariantChecker
from repro.core.serial import SerialExecutor
from repro.errors import WorkloadError
from repro.models.domains.epidemic import (
    CountyIncidenceSource,
    build_epidemic_program,
    build_epidemic_workload,
)
from repro.models.domains.intrusion import (
    build_intrusion_program,
    build_intrusion_workload,
)
from repro.models.domains.laundering import (
    build_laundering_program,
    build_laundering_workload,
)
from repro.models.domains.power import (
    TemperatureAssumptionMonitor,
    build_power_pricing_program,
    build_power_pricing_workload,
)
from repro.runtime.engine import ParallelEngine

from tests.conftest import VertexHarness


class TestPowerPricing:
    def test_structure(self):
        prog = build_power_pricing_program()
        g = prog.graph
        assert set(g.sources()) == {"temp_sensor", "load_sensor"}
        assert g.sinks() == ["price_board"]

    def test_prices_published(self):
        prog, phases = build_power_pricing_workload(phases=240, seed=7)
        res = SerialExecutor(prog).run(phases)
        prices = res.records["price_board"]
        assert len(prices) > 3
        assert all(p[1][1] > 0 for p in prices)  # (phase, (name, price))

    def test_monitor_emits_only_violations(self):
        mon = TemperatureAssumptionMonitor(
            mean=20.0, amplitude=0.0, period=24.0, tolerance=2.0
        )
        h = VertexHarness(mon)
        assert h.step(1, {"t": 20.5})[0] == {}  # within tolerance
        outputs, _, _ = h.step(2, {"t": 27.0})
        assert outputs["out"][1] == 27.0  # violation event

    def test_monitor_adjusts_assumptions(self):
        mon = TemperatureAssumptionMonitor(
            mean=20.0, amplitude=0.0, period=24.0, tolerance=2.0
        )
        h = VertexHarness(mon)
        h.step(1, {"t": 30.0})  # violation: correction += 5
        assert mon.assumed(2) == pytest.approx(25.0)
        # Same reading again now deviates by 5 > 2 -> another violation,
        # but a reading near the corrected assumption is quiet.
        assert h.step(2, {"t": 25.5})[0] == {}

    def test_tolerance_controls_event_rate(self):
        loose_prog, phases = build_power_pricing_workload(
            phases=240, seed=7, tolerance=8.0
        )
        tight_prog, _ = build_power_pricing_workload(
            phases=240, seed=7, tolerance=1.0
        )
        loose = SerialExecutor(loose_prog).run(phases)
        tight = SerialExecutor(tight_prog).run(phases)
        assert tight.message_count > loose.message_count

    def test_serializable_across_engines(self):
        prog, phases = build_power_pricing_workload(phases=100)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=3, checker=InvariantChecker()).run(
            phases
        )
        assert_serializable(serial, par)

    def test_invalid_tolerance(self):
        with pytest.raises(WorkloadError):
            TemperatureAssumptionMonitor(tolerance=0.0)


class TestLaundering:
    def test_structure(self):
        prog = build_laundering_program(branches=3)
        assert len(prog.graph.sources()) == 3
        assert prog.graph.sinks() == ["compliance"]

    def test_anomalies_produce_cases(self):
        prog, phases = build_laundering_workload(
            phases=1500, branches=3, anomaly_rate=5e-3, seed=2
        )
        res = SerialExecutor(prog).run(phases)
        assert len(res.records.get("compliance", [])) > 0

    def test_anomaly_rate_scales_cases(self):
        # Injected anomalies dominate the natural log-normal tail: a run
        # with a high injection rate opens clearly more cases.
        quiet_prog, phases = build_laundering_workload(
            phases=800, branches=2, anomaly_rate=0.0, seed=2
        )
        loud_prog, _ = build_laundering_workload(
            phases=800, branches=2, anomaly_rate=0.03, seed=2
        )
        quiet = SerialExecutor(quiet_prog).run(phases)
        loud = SerialExecutor(loud_prog).run(phases)
        assert len(loud.records.get("compliance", [])) > len(
            quiet.records.get("compliance", [])
        )

    def test_dense_and_delta_agree_on_cases(self):
        delta_prog, phases = build_laundering_workload(
            phases=800, branches=2, anomaly_rate=0.01, seed=6
        )
        dense_prog, _ = build_laundering_workload(
            phases=800, branches=2, anomaly_rate=0.01, seed=6, dense=True
        )
        delta = SerialExecutor(delta_prog).run(phases)
        dense = SerialExecutor(dense_prog).run(phases)
        assert delta.records == dense.records
        assert dense.message_count > delta.message_count

    def test_serializable_across_engines(self):
        prog, phases = build_laundering_workload(
            phases=300, branches=3, anomaly_rate=0.01
        )
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=4).run(phases)
        assert_serializable(serial, par)

    def test_invalid_branches(self):
        with pytest.raises(WorkloadError):
            build_laundering_program(branches=0)


class TestEpidemic:
    def test_structure(self):
        prog = build_epidemic_program(counties=4)
        g = prog.graph
        assert len(g.sources()) == 4
        assert g.sinks() == ["surveillance"]
        # Each detector reads its county's weekly average and its model.
        assert set(g.predecessors("detector_0")) == {"weekly_0", "neighbor_model_0"}

    def test_outbreak_detected_in_outbreak_county(self):
        prog, phases = build_epidemic_workload(
            phases=160, counties=5, seed=23, outbreak_phase=60
        )
        res = SerialExecutor(prog).run(phases)
        alerts = [
            v for _p, v in res.records.get("surveillance", [])
            if v[1][0] == "alert"
        ]
        assert alerts, "outbreak must raise at least one alert"
        counties = {name for name, _e in alerts}
        assert "detector_0" in counties

    def test_outbreak_produces_stronger_deviations(self):
        # Alert records are edge-triggered (alert/clear transitions), so a
        # *sustained* outbreak yields fewer-but-stronger alerts, not more:
        # compare peak deviation instead of alert counts.
        quiet_prog, phases = build_epidemic_workload(
            phases=160, counties=5, seed=23, outbreak_phase=None
        )
        loud_prog, _ = build_epidemic_workload(
            phases=160, counties=5, seed=23, outbreak_phase=60
        )
        quiet = SerialExecutor(quiet_prog).run(phases)
        loud = SerialExecutor(loud_prog).run(phases)

        def alert_time(res, detector, horizon):
            """Total phases *detector* spends in the alert state."""
            total, since = 0, None
            for p, (det, event) in res.records.get("surveillance", []):
                if det != detector:
                    continue
                if event[0] == "alert" and since is None:
                    since = p
                elif event[0] == "clear" and since is not None:
                    total += p - since
                    since = None
            if since is not None:
                total += horizon - since
            return total

        # The sustained outbreak keeps county 0's detector in the alert
        # state for far longer than noise does.
        assert alert_time(loud, "detector_0", 160) > alert_time(
            quiet, "detector_0", 160
        ) + 30

    def test_incidence_source_expected_profile(self):
        src = CountyIncidenceSource(baseline=10.0, outbreak_phase=5, outbreak_slope=2.0)
        assert src.expected(4) < src.expected(10)
        assert src.expected(10) - src.expected(5) >= 2.0 * 5 - 5  # outbreak term

    def test_serializable_across_engines(self):
        prog, phases = build_epidemic_workload(phases=90, counties=4)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=3).run(phases)
        assert_serializable(serial, par)

    def test_too_few_counties(self):
        with pytest.raises(WorkloadError):
            build_epidemic_program(counties=2)


class TestIntrusion:
    def test_structure(self):
        prog = build_intrusion_program()
        g = prog.graph
        assert len(g.sources()) == 4
        assert g.sinks() == ["soc"]
        assert g.in_degree("composite") == 4

    def test_incidents_recorded_eventually(self):
        prog, phases = build_intrusion_workload(phases=800, seed=31, k=2)
        res = SerialExecutor(prog).run(phases)
        incidents = res.records.get("soc", [])
        assert incidents, "the composite condition should fire at least once"

    def test_higher_k_alarms_for_less_total_time(self):
        # Edge-triggered records mean fire *counts* are not monotone in k
        # (a stricter condition toggles differently), but the total time
        # spent in the alarm state is.
        def alarm_time(res, horizon):
            events = sorted(
                (p, v[1]) for p, v in res.records.get("soc", [])
            )
            total, since = 0, None
            for p, state in events:
                if state is True and since is None:
                    since = p
                elif state is False and since is not None:
                    total += p - since
                    since = None
            if since is not None:
                total += horizon - since
            return total

        prog2, phases = build_intrusion_workload(phases=800, seed=31, k=2)
        prog4, _ = build_intrusion_workload(phases=800, seed=31, k=4)
        r2 = SerialExecutor(prog2).run(phases)
        r4 = SerialExecutor(prog4).run(phases)
        assert alarm_time(r4, 800) <= alarm_time(r2, 800)

    def test_traffic_mostly_quiet(self):
        """Sparse feeds mean the engine executes far fewer pairs than the
        dense bound N x phases — the Δ efficiency claim on this domain."""
        prog, phases = build_intrusion_workload(phases=500, seed=31)
        res = SerialExecutor(prog).run(phases)
        dense_bound = prog.n * len(phases)
        assert res.execution_count < dense_bound * 0.6

    def test_serializable_across_engines(self):
        prog, phases = build_intrusion_workload(phases=250)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=3).run(phases)
        assert_serializable(serial, par)
