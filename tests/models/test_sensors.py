"""Tests for source vertices (seeded sensors)."""

import pytest

from repro.core.vertex import EMIT_NOTHING, VertexContext
from repro.errors import WorkloadError
from repro.models.sensors import (
    PeriodicSensor,
    PoissonEventSource,
    RandomWalkSensor,
    ReplaySource,
    SilentSource,
    TransactionSource,
)


def run_source(src, phases: int):
    """Drive a source through phases; returns the emission per phase
    (None when silent)."""
    out = []
    for p in range(1, phases + 1):
        ctx = VertexContext(
            name="s", phase=p, inputs={}, changed=set(), successors=["out"]
        )
        value = src.on_execute(ctx)
        out.append(None if value is EMIT_NOTHING else value)
    return out


class TestRandomWalkSensor:
    def test_deterministic_per_seed(self):
        a = run_source(RandomWalkSensor(seed=3), 20)
        b = run_source(RandomWalkSensor(seed=3), 20)
        assert a == b

    def test_different_seeds_differ(self):
        assert run_source(RandomWalkSensor(seed=1), 20) != run_source(
            RandomWalkSensor(seed=2), 20
        )

    def test_reset_restores_sequence(self):
        s = RandomWalkSensor(seed=5)
        first = run_source(s, 10)
        s.reset()
        assert run_source(s, 10) == first

    def test_report_delta_suppresses(self):
        chatty = RandomWalkSensor(seed=7, step=1.0, report_delta=0.0)
        quiet = RandomWalkSensor(seed=7, step=1.0, report_delta=5.0)
        chatty_count = sum(1 for v in run_source(chatty, 100) if v is not None)
        quiet_count = sum(1 for v in run_source(quiet, 100) if v is not None)
        assert chatty_count == 100
        assert 0 < quiet_count < chatty_count

    def test_starts_near_start_value(self):
        s = RandomWalkSensor(seed=1, start=100.0, step=0.001)
        (first,) = run_source(s, 1)
        assert abs(first - 100.0) < 1.0

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            RandomWalkSensor(step=-1)


class TestPeriodicSensor:
    def test_true_value_period(self):
        s = PeriodicSensor(mean=10.0, amplitude=5.0, period=4.0, noise=0.0)
        assert s.true_value(0) == pytest.approx(10.0)
        assert s.true_value(1) == pytest.approx(15.0)
        assert s.true_value(2) == pytest.approx(10.0)
        assert s.true_value(3) == pytest.approx(5.0)

    def test_zero_noise_tracks_signal(self):
        s = PeriodicSensor(seed=0, noise=0.0, mean=20.0, amplitude=10.0, period=24.0)
        emitted = run_source(s, 24)
        assert emitted[5] == pytest.approx(s.true_value(6), abs=1e-5)

    def test_invalid_period(self):
        with pytest.raises(WorkloadError):
            PeriodicSensor(period=0)


class TestPoissonEventSource:
    def test_mostly_silent_for_small_rate(self):
        emitted = run_source(PoissonEventSource(seed=1, rate=0.05), 400)
        active = sum(1 for v in emitted if v is not None)
        assert 0 < active < 60

    def test_counts_positive(self):
        emitted = run_source(PoissonEventSource(seed=2, rate=2.0), 100)
        assert all(v is None or v >= 1 for v in emitted)

    def test_mean_roughly_matches_rate(self):
        emitted = run_source(PoissonEventSource(seed=3, rate=1.0), 2000)
        total = sum(v for v in emitted if v is not None)
        assert 0.85 < total / 2000 < 1.15

    def test_invalid_rate(self):
        with pytest.raises(WorkloadError):
            PoissonEventSource(rate=-0.1)


class TestTransactionSource:
    def test_emits_every_phase(self):
        emitted = run_source(TransactionSource(seed=1), 50)
        assert all(v is not None and v > 0 for v in emitted)

    def test_anomaly_rate_controls_spikes(self):
        src = TransactionSource(seed=4, anomaly_rate=0.05, anomaly_factor=100.0)
        run_source(src, 2000)
        assert 50 <= src.anomalies_emitted <= 150

    def test_reset_clears_counter(self):
        src = TransactionSource(seed=4, anomaly_rate=0.1)
        run_source(src, 100)
        src.reset()
        assert src.anomalies_emitted == 0

    def test_invalid_anomaly_rate(self):
        with pytest.raises(WorkloadError):
            TransactionSource(anomaly_rate=1.5)


class TestReplaySource:
    def test_replays_values(self):
        s = ReplaySource(["a", None, "c"])
        assert run_source(s, 4) == ["a", None, "c", None]


class TestSilentSource:
    def test_never_emits(self):
        assert run_source(SilentSource(), 10) == [None] * 10
