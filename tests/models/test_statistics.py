"""Tests for statistical models and the two anomaly emission options."""

import math

import pytest

from repro.errors import WorkloadError
from repro.models.statistics import (
    EWMA,
    AnomalyDetector,
    DenseAnomalyDetector,
    MovingAverage,
    MovingStd,
    RunningStats,
    SlidingRegressionDetector,
    ZScoreDetector,
)

from tests.conftest import VertexHarness


class TestRunningStats:
    def test_mean_and_window_eviction(self):
        rs = RunningStats(3)
        for v in (1.0, 2.0, 3.0, 4.0):
            rs.push(v)
        assert len(rs) == 3
        assert rs.mean == pytest.approx(3.0)

    def test_std_matches_sample_std(self):
        rs = RunningStats(10)
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for v in data:
            rs.push(v)
        mean = sum(data) / len(data)
        var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert rs.std == pytest.approx(math.sqrt(var))

    def test_std_of_single_value_zero(self):
        rs = RunningStats(5)
        rs.push(3.0)
        assert rs.std == 0.0

    def test_mean_empty_raises(self):
        with pytest.raises(WorkloadError):
            RunningStats(3).mean

    def test_full_flag(self):
        rs = RunningStats(2)
        assert not rs.full
        rs.push(1)
        rs.push(2)
        assert rs.full

    def test_invalid_window(self):
        with pytest.raises(WorkloadError):
            RunningStats(0)

    def test_numerical_stability_with_offset_data(self):
        rs = RunningStats(50)
        for i in range(50):
            rs.push(1e9 + i * 0.001)
        assert rs.std < 1.0  # must not explode from catastrophic cancellation


class TestMovingAverage:
    def test_windowed_mean(self):
        h = VertexHarness(MovingAverage(window=2))
        assert h.step(1, {"x": 2.0})[0] == {"out": 2.0}
        assert h.step(2, {"x": 4.0})[0] == {"out": 3.0}
        assert h.step(3, {"x": 4.0})[0] == {"out": 4.0}

    def test_suppresses_equal_mean(self):
        h = VertexHarness(MovingAverage(window=2))
        h.step(1, {"x": 3.0})
        assert h.step(2, {"x": 3.0})[0] == {}

    def test_reset(self):
        ma = MovingAverage(window=3)
        h = VertexHarness(ma)
        h.step(1, {"x": 100.0})
        ma.reset()
        assert h.step(2, {"x": 2.0})[0] == {"out": 2.0}


class TestMovingStd:
    def test_std_stream(self):
        h = VertexHarness(MovingStd(window=3))
        h.step(1, {"x": 1.0})
        outputs, _, _ = h.step(2, {"x": 3.0})
        assert outputs["out"] == pytest.approx(math.sqrt(2.0))


class TestEWMA:
    def test_smoothing(self):
        h = VertexHarness(EWMA(alpha=0.5))
        assert h.step(1, {"x": 10.0})[0] == {"out": 10.0}
        assert h.step(2, {"x": 20.0})[0] == {"out": 15.0}

    def test_invalid_alpha(self):
        with pytest.raises(WorkloadError):
            EWMA(alpha=0.0)
        with pytest.raises(WorkloadError):
            EWMA(alpha=1.5)


class TestAnomalyOptions:
    def test_option2_emits_only_anomalies(self):
        det = AnomalyDetector(lambda v: v > 100)
        h = VertexHarness(det)
        assert h.step(1, {"x": 5})[0] == {}
        outputs, _, _ = h.step(2, {"x": 500})
        assert outputs["out"][0] == "anomaly"

    def test_option1_emits_verdict_for_every_message(self):
        det = DenseAnomalyDetector(lambda v: v > 100)
        h = VertexHarness(det)
        assert h.step(1, {"x": 5})[0]["out"][0] == "ok"
        assert h.step(2, {"x": 500})[0]["out"][0] == "anomaly"

    def test_message_rate_ratio(self):
        """The Section 1 ratio: over N inputs with anomaly rate r, option 1
        emits N messages, option 2 emits ~rN."""
        sparse = AnomalyDetector(lambda v: v >= 990)
        dense = DenseAnomalyDetector(lambda v: v >= 990)
        hs, hd = VertexHarness(sparse), VertexHarness(dense)
        n = 1000
        sparse_count = sum(
            1 for p in range(1, n + 1) if hs.step(p, {"x": p})[0]
        )
        dense_count = sum(
            1 for p in range(1, n + 1) if hd.step(p, {"x": p})[0]
        )
        assert dense_count == n
        assert sparse_count == 11  # 990..1000
        assert dense_count / sparse_count > 50

    def test_both_silent_without_change(self):
        for det in (AnomalyDetector(), DenseAnomalyDetector()):
            h = VertexHarness(det)
            assert h.step(1, {})[0] == {}

    def test_default_predicate_flags_non_finite(self):
        h = VertexHarness(AnomalyDetector())
        assert h.step(1, {"x": 1.0})[0] == {}
        assert h.step(2, {"x": float("nan")})[0] != {}


class TestZScoreDetector:
    def feed(self, det, values, start_phase=1):
        h = VertexHarness(det)
        out = []
        for i, v in enumerate(values):
            outputs, _, _ = h.step(start_phase + i, {"x": v})
            out.append(outputs.get("out"))
        return out

    def test_flags_outlier_after_warmup(self):
        det = ZScoreDetector(window=20, threshold=3.0)
        values = [10.0 + (i % 5) * 0.1 for i in range(30)] + [50.0]
        out = self.feed(det, values)
        assert out[-1] is not None
        assert out[-1][0] == "anomaly"

    def test_quiet_on_steady_stream(self):
        det = ZScoreDetector(window=20, threshold=3.0)
        values = [10.0 + (i % 7) * 0.05 for i in range(60)]
        out = self.feed(det, values)
        assert all(o is None for o in out)

    def test_outlier_excluded_from_window(self):
        """After an anomaly, the window statistics must be unpolluted: an
        immediately following normal value is not flagged."""
        det = ZScoreDetector(window=20, threshold=3.0)
        values = [10.0 + (i % 5) * 0.1 for i in range(30)] + [50.0, 10.2]
        out = self.feed(det, values)
        assert out[-2] is not None  # the spike
        assert out[-1] is None  # back to normal

    def test_no_flags_during_warmup(self):
        det = ZScoreDetector(window=30, threshold=3.0)
        out = self.feed(det, [1.0, 100.0, 1.0])
        assert all(o is None for o in out)

    def test_invalid_threshold(self):
        with pytest.raises(WorkloadError):
            ZScoreDetector(threshold=0.0)

    def test_reset(self):
        det = ZScoreDetector(window=10, threshold=2.0)
        self.feed(det, [float(i) for i in range(10)])
        det.reset()
        assert len(det.stats) == 0


class TestSlidingRegressionDetector:
    def test_flags_residual_outlier_on_trend(self):
        det = SlidingRegressionDetector(window=20, threshold=2.5)
        h = VertexHarness(det)
        out = []
        for p in range(1, 31):
            value = 2.0 * p + ((p % 3) - 1) * 0.1  # clean trend + tiny noise
            out.append(h.step(p, {"x": value})[0].get("out"))
        assert all(o is None for o in out)
        # A big departure from the trend line is flagged.
        outputs, _, _ = h.step(31, {"x": 2.0 * 31 + 30.0})
        assert outputs["out"][0] == "anomaly"

    def test_trend_itself_not_flagged(self):
        """A linear trend fools a z-score detector but not the regression
        detector — the reason the paper's example uses regression."""
        # On a clean linear trend with slope s and window w, each new
        # value sits ~s*w/2 above the window mean while the window std is
        # ~s*w/sqrt(12), i.e. a constant z of ~sqrt(3) ~ 1.73: a z-score
        # detector at threshold 1.5 fires forever, while the regression
        # detector models the trend and stays quiet.
        z = ZScoreDetector(window=20, threshold=1.5)
        r = SlidingRegressionDetector(window=20, threshold=2.5)
        hz, hr = VertexHarness(z), VertexHarness(r)
        z_flags = r_flags = 0
        for p in range(1, 60):
            value = 5.0 * p + ((p * 7) % 5 - 2) * 0.05
            if hz.step(p, {"x": value})[0]:
                z_flags += 1
            if hr.step(p, {"x": value})[0]:
                r_flags += 1
        assert r_flags == 0
        assert z_flags > 0

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            SlidingRegressionDetector(window=3)
        with pytest.raises(WorkloadError):
            SlidingRegressionDetector(threshold=-1)

    def test_reset(self):
        det = SlidingRegressionDetector(window=10)
        h = VertexHarness(det)
        for p in range(1, 8):
            h.step(p, {"x": float(p)})
        det.reset()
        assert det._fit() is None
