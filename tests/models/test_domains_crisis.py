"""Tests for the crisis-management (hurricane) domain."""

import math

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.invariants import InvariantChecker
from repro.core.serial import SerialExecutor
from repro.core.vertex import VertexContext, EMIT_NOTHING
from repro.errors import WorkloadError
from repro.models.domains.crisis import (
    EvacuationAdvisor,
    RegionThreat,
    ShelterOccupancySource,
    StormTrackSource,
    build_crisis_program,
    build_crisis_workload,
)
from repro.runtime.engine import ParallelEngine

from tests.conftest import VertexHarness


def run_source(src, phases):
    out = []
    for p in range(1, phases + 1):
        ctx = VertexContext(
            name="s", phase=p, inputs={}, changed=set(), successors=["out"]
        )
        value = src.on_execute(ctx)
        out.append(None if value is EMIT_NOTHING else value)
    return out


class TestStormTrack:
    def test_approaches_origin(self):
        src = StormTrackSource(seed=1, start=(100.0, 100.0), wander=0.2)
        positions = [v for v in run_source(src, 80) if v is not None]
        first, last = positions[0], positions[-1]
        assert math.hypot(*last) < math.hypot(*first)

    def test_report_delta_suppresses(self):
        chatty = StormTrackSource(seed=2, report_delta=0.0)
        quiet = StormTrackSource(seed=2, report_delta=10.0)
        chatty_n = sum(1 for v in run_source(chatty, 60) if v is not None)
        quiet_n = sum(1 for v in run_source(quiet, 60) if v is not None)
        assert quiet_n < chatty_n

    def test_reset(self):
        src = StormTrackSource(seed=3)
        first = run_source(src, 20)
        src.reset()
        assert run_source(src, 20) == first

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            StormTrackSource(report_delta=-1)


class TestRegionThreat:
    def test_levels_by_distance(self):
        rt = RegionThreat(center=(0.0, 0.0), watch=80.0, warning=40.0)
        assert rt.level_for((100.0, 0.0)) == 0
        assert rt.level_for((60.0, 0.0)) == 1
        assert rt.level_for((10.0, 0.0)) == 2

    def test_transitions_only(self):
        rt = RegionThreat(center=(0.0, 0.0), watch=80.0, warning=40.0)
        h = VertexHarness(rt)
        assert h.step(1, {"storm": (100.0, 0.0)})[0] == {"out": 0}
        assert h.step(2, {"storm": (95.0, 0.0)})[0] == {}  # still level 0
        assert h.step(3, {"storm": (50.0, 0.0)})[0] == {"out": 1}
        assert h.step(4, {"storm": (10.0, 0.0)})[0] == {"out": 2}

    def test_invalid_bands(self):
        with pytest.raises(WorkloadError):
            RegionThreat(center=(0, 0), watch=10.0, warning=20.0)


class TestShelterOccupancy:
    def test_monotone_and_capped(self):
        src = ShelterOccupancySource(seed=4, capacity=100, base_arrivals=5.0)
        values = [v for v in run_source(src, 120) if v is not None]
        assert values == sorted(values)
        assert values[-1] <= 1.0

    def test_eventually_fills(self):
        src = ShelterOccupancySource(
            seed=5, capacity=50, base_arrivals=5.0, surge_per_phase=0.5
        )
        values = [v for v in run_source(src, 100) if v is not None]
        assert values[-1] == 1.0

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            ShelterOccupancySource(capacity=0)


class TestEvacuationAdvisor:
    def advisor(self) -> VertexHarness:
        return VertexHarness(
            EvacuationAdvisor(
                region="r0",
                threat_input="threat",
                flood_input="flood",
                roads_input="roads",
                capacity_input="cap",
            )
        )

    def test_quiet_by_default(self):
        h = self.advisor()
        assert h.step(1, {"threat": 0})[0] == {}

    def test_evacuate_when_threatened_and_flooding(self):
        h = self.advisor()
        h.step(1, {"threat": 1})
        outputs, _, _ = h.step(2, {"flood": True})
        assert outputs == {"out": ("evacuate", "r0")}

    def test_shelter_in_place_when_full(self):
        h = self.advisor()
        h.step(1, {"threat": 2, "flood": True})
        outputs, _, _ = h.step(2, {"cap": True})
        assert outputs == {"out": ("shelter-in-place", "r0")}

    def test_stand_down_announced_after_activity(self):
        h = self.advisor()
        h.step(1, {"threat": 1, "flood": True})  # evacuate
        outputs, _, _ = h.step(2, {"flood": False, "roads": False})
        assert outputs == {"out": ("stand-down", "r0")}

    def test_no_repeat_emissions(self):
        h = self.advisor()
        h.step(1, {"threat": 1, "flood": True})
        assert h.step(2, {"threat": 2})[0] == {}  # still "evacuate"


class TestCrisisComposition:
    def test_structure(self):
        prog = build_crisis_program(regions=2)
        g = prog.graph
        assert len(g.sources()) == 1 + 3 * 2  # storm + 3 sensors/region
        assert g.sinks() == ["emergency_ops"]
        assert g.in_degree("evacuation_r0") == 4

    def test_scenario_plays_out(self):
        prog, phases = build_crisis_workload(phases=120, regions=3)
        res = SerialExecutor(prog).run(phases)
        events = [v for _p, (_s, v) in res.records.get("emergency_ops", [])]
        kinds = {e[0] for e in events}
        assert "evacuate" in kinds
        # As shelters fill late in the run, recommendations degrade.
        assert "shelter-in-place" in kinds

    def test_delta_economy(self):
        prog, phases = build_crisis_workload(phases=120, regions=3)
        res = SerialExecutor(prog).run(phases)
        assert res.execution_count < prog.n * len(phases) * 0.7

    def test_serializable_across_engines(self):
        prog, phases = build_crisis_workload(phases=80, regions=2)
        serial = SerialExecutor(prog).run(phases)
        checker = InvariantChecker()
        par = ParallelEngine(prog, num_threads=4, checker=checker).run(phases)
        assert_serializable(serial, par)
        assert checker.violations == []

    def test_invalid_regions(self):
        with pytest.raises(WorkloadError):
            build_crisis_program(regions=0)
