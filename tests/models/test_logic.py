"""Tests for boolean condition combinators (edge-triggered Δ emission)."""

import pytest

from repro.errors import WorkloadError
from repro.models.logic import And, Debounce, KofN, Not, Or, Threshold

from tests.conftest import VertexHarness


class TestThreshold:
    def test_initial_state_emitted_once(self):
        h = VertexHarness(Threshold(10.0))
        # The first evaluation establishes the state and emits it.
        assert h.step(1, {"x": 5.0})[0] == {"out": False}
        # Staying below the limit emits nothing further.
        assert h.step(2, {"x": 6.0})[0] == {}

    def test_above_semantics(self):
        h = VertexHarness(Threshold(10.0, "above"))
        outs = [h.step(p, {"x": v})[0].get("out") for p, v in
                [(1, 5.0), (2, 15.0), (3, 16.0), (4, 3.0)]]
        assert outs == [False, True, None, False]

    def test_below_semantics(self):
        h = VertexHarness(Threshold(0.0, "below"))
        outs = [h.step(p, {"x": v})[0].get("out") for p, v in
                [(1, 1.0), (2, -1.0)]]
        assert outs == [False, True]

    def test_invalid_direction(self):
        with pytest.raises(WorkloadError):
            Threshold(1.0, "sideways")

    def test_silent_without_change(self):
        h = VertexHarness(Threshold(1.0))
        assert h.step(1, {})[0] == {}

    def test_reset(self):
        t = Threshold(10.0)
        h = VertexHarness(t)
        h.step(1, {"x": 20.0})
        t.reset()
        assert h.step(2, {"x": 30.0})[0] == {"out": True}  # re-emits


class TestAndOrNot:
    def test_and_all_latched(self):
        h = VertexHarness(And())
        assert h.step(1, {"a": True})[0] == {"out": True}
        assert h.step(2, {"b": False})[0] == {"out": False}
        assert h.step(3, {"b": True})[0] == {"out": True}

    def test_and_with_arity_waits_for_all(self):
        h = VertexHarness(And(arity=2))
        assert h.step(1, {"a": True})[0] == {"out": False}  # b unheard
        assert h.step(2, {"b": True})[0] == {"out": True}

    def test_or(self):
        h = VertexHarness(Or())
        assert h.step(1, {"a": False})[0] == {"out": False}
        assert h.step(2, {"b": True})[0] == {"out": True}
        assert h.step(3, {"b": False})[0] == {"out": False}

    def test_not(self):
        h = VertexHarness(Not())
        assert h.step(1, {"x": True})[0] == {"out": False}
        assert h.step(2, {"x": False})[0] == {"out": True}

    def test_no_repeat_emissions(self):
        h = VertexHarness(Or())
        h.step(1, {"a": True})
        assert h.step(2, {"b": True})[0] == {}  # still True


class TestKofN:
    def test_threshold_count(self):
        h = VertexHarness(KofN(2))
        assert h.step(1, {"a": True})[0] == {"out": False}
        assert h.step(2, {"b": True})[0] == {"out": True}
        assert h.step(3, {"a": False})[0] == {"out": False}

    def test_invalid_k(self):
        with pytest.raises(WorkloadError):
            KofN(0)


class TestDebounce:
    def test_requires_n_consecutive(self):
        h = VertexHarness(Debounce(3))
        assert h.step(1, {"x": True})[0] == {}
        assert h.step(2, {"x": True})[0] == {}
        assert h.step(3, {"x": True})[0] == {"out": True}

    def test_false_resets_streak(self):
        h = VertexHarness(Debounce(2))
        h.step(1, {"x": True})
        h.step(2, {"x": False})
        assert h.step(3, {"x": True})[0] == {}
        assert h.step(4, {"x": True})[0] == {"out": True}

    def test_false_transition_emitted(self):
        h = VertexHarness(Debounce(1))
        assert h.step(1, {"x": True})[0] == {"out": True}
        assert h.step(2, {"x": False})[0] == {"out": False}
        assert h.step(3, {"x": False})[0] == {}

    def test_leading_false_silent(self):
        h = VertexHarness(Debounce(1))
        assert h.step(1, {"x": False})[0] == {}

    def test_invalid_n(self):
        with pytest.raises(WorkloadError):
            Debounce(0)
