"""Tests for the Pearson correlator and the vector (NumPy) models."""

import math

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import VertexContext, EMIT_NOTHING
from repro.errors import WorkloadError
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph
from repro.models.statistics import PearsonCorrelator
from repro.models.vector import VectorReduce, VectorSensor, VectorZScore
from repro.models.basic import Recorder
from repro.runtime.engine import ParallelEngine

from tests.conftest import VertexHarness


class TestPearsonCorrelator:
    def drive(self, pairs, window=30, emit_delta=0.0):
        corr = PearsonCorrelator("a", "b", window=window, emit_delta=emit_delta)
        h = VertexHarness(corr)
        out = []
        for p, (a, b) in enumerate(pairs, start=1):
            outputs, _, _ = h.step(p, {"a": a, "b": b})
            out.append(outputs.get("out"))
        return corr, out

    def test_perfectly_correlated(self):
        _corr, out = self.drive([(i, 2 * i + 1) for i in range(10)])
        assert out[-1] == pytest.approx(1.0)

    def test_anticorrelated(self):
        _corr, out = self.drive([(i, -3 * i) for i in range(10)])
        assert out[-1] == pytest.approx(-1.0)

    def test_uncorrelated_near_zero(self):
        import random

        rng = random.Random(5)
        pairs = [(rng.random(), rng.random()) for _ in range(200)]
        corr, _out = self.drive(pairs, window=200)
        assert abs(corr.correlation()) < 0.25

    def test_silent_until_three_pairs(self):
        _corr, out = self.drive([(1, 1), (2, 2)])
        assert out == [None, None]

    def test_silent_until_both_inputs(self):
        corr = PearsonCorrelator("a", "b")
        h = VertexHarness(corr)
        assert h.step(1, {"a": 1.0})[0] == {}

    def test_constant_stream_undefined(self):
        corr, out = self.drive([(1.0, i) for i in range(10)])
        assert corr.correlation() is None
        assert all(o is None for o in out)

    def test_emit_delta_suppression(self):
        _corr, out = self.drive(
            [(i, 2 * i) for i in range(20)], emit_delta=0.5
        )
        emissions = [o for o in out if o is not None]
        assert len(emissions) == 1  # r stays ~1.0: no further emissions

    def test_latched_input_sampling(self):
        """When only one stream changes, the pair uses the other's latched
        value — Section 3.1 semantics applied to correlation."""
        corr = PearsonCorrelator("a", "b", window=10)
        h = VertexHarness(corr)
        h.step(1, {"a": 1.0, "b": 5.0})
        h.step(2, {"a": 2.0})  # b latched at 5.0
        h.step(3, {"a": 3.0})
        assert list(corr._pairs) == [(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            PearsonCorrelator("a", "b", window=2)
        with pytest.raises(WorkloadError):
            PearsonCorrelator("a", "b", emit_delta=-1)

    def test_reset(self):
        corr, _ = self.drive([(i, i) for i in range(5)])
        corr.reset()
        assert corr.correlation() is None


def run_vector_source(src, phases):
    out = []
    for p in range(1, phases + 1):
        ctx = VertexContext(
            name="s", phase=p, inputs={}, changed=set(), successors=["out"]
        )
        value = src.on_execute(ctx)
        out.append(None if value is EMIT_NOTHING else value)
    return out


class TestVectorSensor:
    def test_emits_tuples_every_phase(self):
        out = run_vector_source(VectorSensor(seed=1, channels=4), 10)
        assert all(isinstance(v, tuple) and len(v) == 4 for v in out)

    def test_deterministic_and_resettable(self):
        s = VectorSensor(seed=2, channels=3)
        first = run_vector_source(s, 8)
        s.reset()
        assert run_vector_source(s, 8) == first

    def test_spikes_occur(self):
        s = VectorSensor(seed=3, channels=4, step=0.1, spike_rate=0.3, spike_size=50.0)
        out = run_vector_source(s, 60)
        jumps = 0
        for prev, cur in zip(out, out[1:]):
            if max(abs(c - p) for c, p in zip(cur, prev)) > 25:
                jumps += 1
        assert jumps > 3

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            VectorSensor(channels=0)
        with pytest.raises(WorkloadError):
            VectorSensor(spike_rate=2.0)


class TestVectorZScore:
    def test_localises_spiked_channel(self):
        det = VectorZScore(window=20, threshold=4.0)
        h = VertexHarness(det)
        base = tuple(float(i) for i in range(6))
        import random

        rng = random.Random(7)
        for p in range(1, 31):
            noisy = tuple(v + rng.gauss(0, 0.1) for v in base)
            assert h.step(p, {"x": noisy})[0] == {}
        spiked = list(base)
        spiked[3] += 30.0
        outputs, _, _ = h.step(31, {"x": tuple(spiked)})
        kind, _phase, report = outputs["out"]
        assert kind == "anomaly"
        assert [c for c, _z in report] == [3]

    def test_anomalies_excluded_from_window(self):
        det = VectorZScore(window=20, threshold=4.0)
        h = VertexHarness(det)
        import random

        rng = random.Random(9)
        for p in range(1, 31):
            h.step(p, {"x": tuple(rng.gauss(0, 0.2) for _ in range(3))})
        h.step(31, {"x": (50.0, 0.0, 0.0)})  # anomaly
        outputs, _, _ = h.step(32, {"x": (0.1, 0.0, -0.1)})
        assert outputs == {}  # normal again; window unpolluted

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            VectorZScore(window=2)
        with pytest.raises(WorkloadError):
            VectorZScore(threshold=0)


class TestVectorReduce:
    @pytest.mark.parametrize(
        "op,expected",
        [("mean", 2.0), ("max", 4.0), ("min", 0.0), ("sum", 6.0)],
    )
    def test_ops(self, op, expected):
        h = VertexHarness(VectorReduce(op))
        assert h.step(1, {"x": (0.0, 2.0, 4.0)})[0] == {"out": expected}

    def test_norm(self):
        h = VertexHarness(VectorReduce("norm"))
        assert h.step(1, {"x": (3.0, 4.0)})[0] == {"out": 5.0}

    def test_emit_delta(self):
        h = VertexHarness(VectorReduce("mean", emit_delta=1.0))
        h.step(1, {"x": (0.0, 0.0)})
        assert h.step(2, {"x": (0.5, 0.5)})[0] == {}
        assert h.step(3, {"x": (2.0, 2.0)})[0] == {"out": 2.0}

    def test_invalid_op(self):
        with pytest.raises(WorkloadError):
            VectorReduce("median")


class TestVectorPipelineEndToEnd:
    def test_multichannel_program_serializable(self):
        g = ComputationGraph(name="vector-pipeline")
        g.add_vertices(["array_sensor", "detector", "magnitude", "ops"])
        g.add_edge("array_sensor", "detector")
        g.add_edge("array_sensor", "magnitude")
        g.add_edge("detector", "ops")
        g.add_edge("magnitude", "ops")
        prog = Program(
            g,
            {
                "array_sensor": VectorSensor(
                    seed=11, channels=6, step=0.2, spike_rate=0.05, spike_size=40.0
                ),
                "detector": VectorZScore(window=15, threshold=4.0),
                "magnitude": VectorReduce("norm", emit_delta=5.0),
                "ops": Recorder(),
            },
        )
        phases = [PhaseInput(k, float(k)) for k in range(1, 121)]
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=3).run(phases)
        assert_serializable(serial, par)
        anomalies = [
            v for _p, (name, v) in serial.records["ops"] if name == "detector"
        ]
        assert anomalies, "spikes should surface as anomalies"
