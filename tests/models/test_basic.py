"""Tests for basic plumbing vertices."""

import pytest

from repro.errors import WorkloadError
from repro.models.basic import Constant, Delay, Gate, Identity, Recorder, Sampler

from tests.conftest import VertexHarness


class TestIdentity:
    def test_forwards_changes(self):
        h = VertexHarness(Identity())
        outputs, _, _ = h.step(1, {"in": 5})
        assert outputs == {"out": 5}

    def test_silent_without_change(self):
        h = VertexHarness(Identity())
        h.step(1, {"in": 5})
        outputs, _, _ = h.step(2, {})
        assert outputs == {}

    def test_rejects_multiple_changes(self):
        h = VertexHarness(Identity())
        with pytest.raises(WorkloadError):
            h.step(1, {"a": 1, "b": 2})


class TestConstant:
    def test_emits_once(self):
        h = VertexHarness(Constant(7))
        o1, _, _ = h.step(1, {})
        o2, _, _ = h.step(2, {})
        assert o1 == {"out": 7}
        assert o2 == {}

    def test_reset_re_emits(self):
        c = Constant("x")
        h = VertexHarness(c)
        h.step(1, {})
        c.reset()
        outputs, _, _ = h.step(2, {})
        assert outputs == {"out": "x"}


class TestDelay:
    def test_delays_by_k(self):
        h = VertexHarness(Delay(2))
        assert h.step(1, {"in": "a"})[0] == {}
        assert h.step(2, {"in": "b"})[0] == {}
        assert h.step(3, {"in": "c"})[0] == {"out": "a"}
        assert h.step(4, {"in": "d"})[0] == {"out": "b"}

    def test_emits_even_without_new_input(self):
        h = VertexHarness(Delay(1))
        h.step(1, {"in": "x"})
        # Executed at phase 2 with no change: the buffered value is due.
        assert h.step(2, {})[0] == {"out": "x"}

    def test_invalid_k(self):
        with pytest.raises(WorkloadError):
            Delay(0)

    def test_reset_clears_buffer(self):
        d = Delay(1)
        h = VertexHarness(d)
        h.step(1, {"in": "x"})
        d.reset()
        assert h.step(2, {})[0] == {}


class TestGate:
    def test_forwards_while_open(self):
        h = VertexHarness(Gate())
        h.step(1, {"control": True})
        assert h.step(2, {"data": 5})[0] == {"out": 5}

    def test_blocks_while_closed(self):
        h = VertexHarness(Gate())
        h.step(1, {"control": False})
        assert h.step(2, {"data": 5})[0] == {}

    def test_blocks_before_any_control(self):
        h = VertexHarness(Gate())
        assert h.step(1, {"data": 5})[0] == {}

    def test_control_change_alone_emits_nothing(self):
        h = VertexHarness(Gate())
        assert h.step(1, {"control": True})[0] == {}


class TestSampler:
    def test_every_second_change(self):
        h = VertexHarness(Sampler(2))
        results = [h.step(p, {"in": p})[0] for p in range(1, 6)]
        assert results == [{}, {"out": 2}, {}, {"out": 4}, {}]

    def test_every_one_passes_all(self):
        h = VertexHarness(Sampler(1))
        assert h.step(1, {"in": "a"})[0] == {"out": "a"}

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            Sampler(0)

    def test_reset(self):
        s = Sampler(2)
        h = VertexHarness(s)
        h.step(1, {"in": 1})
        s.reset()
        assert h.step(2, {"in": 2})[0] == {}  # count restarted


class TestRecorder:
    def test_records_changes_sorted(self):
        h = VertexHarness(Recorder(), successors=())
        _, records, _ = h.step(1, {"b": 2, "a": 1})
        assert records == [("a", 1), ("b", 2)]

    def test_silent_output(self):
        h = VertexHarness(Recorder())
        outputs, _, _ = h.step(1, {"x": 1})
        assert outputs == {}
