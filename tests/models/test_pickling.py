"""Picklability audit: everything the process engine ships must round-trip.

The process backend (:mod:`repro.runtime.mp`) pickles vertex behaviours
(the per-worker warm cache), :class:`~repro.events.PhaseInput` payloads,
and :meth:`~repro.core.vertex.Vertex.snapshot_state` snapshots.  These
tests enumerate every vertex class in :mod:`repro.models` (domains
included) and prove each survives a pickle round-trip — fresh *and* after
its state has evolved through real phases — so a model added with a
closure or lambda inside fails here, not deep inside a worker process.
"""

from __future__ import annotations

import inspect
import pickle
import random
import sys
from collections import deque
from typing import Any, Dict

import pytest

import repro.models  # noqa: F401 - populates sys.modules
import repro.models.domains.crisis  # noqa: F401
import repro.models.domains.epidemic  # noqa: F401
import repro.models.domains.intrusion  # noqa: F401
import repro.models.domains.laundering  # noqa: F401
import repro.models.domains.power  # noqa: F401
from repro.core.serial import SerialExecutor
from repro.core.vertex import Vertex
from repro.events import Event, Message, PhaseInput
from repro.models.domains.laundering import build_laundering_workload
from repro.models.statistics import ZScoreDetector
from repro.streams import cpu_heavy_workload, fig1_workload, grid_workload

from tests.conftest import VertexHarness

# Constructor arguments for classes whose parameters have no defaults.
REQUIRED_ARGS: Dict[str, Dict[str, Any]] = {
    "Difference": {"minuend": "a", "subtrahend": "b"},
    "LinearCombiner": {"weights": {"a": 1.0, "b": -0.5}},
    "KofN": {"k": 2},
    "Threshold": {"limit": 1.0},
    "PearsonCorrelator": {"a_input": "a", "b_input": "b"},
    "TwoSigmaDetector": {"rate_input": "rate", "model_input": "model"},
    "RegionThreat": {"center": (10.0, 20.0)},
    "StructuringDetector": {"key": "acct00"},
    "EvacuationAdvisor": {
        "region": "r1",
        "threat_input": "threat",
        "flood_input": "flood",
        "roads_input": "roads",
        "capacity_input": "capacity",
    },
}


def _model_vertex_classes():
    """Every Vertex subclass defined under repro.models (domains incl.)."""
    classes = {}
    for mod_name, mod in sorted(sys.modules.items()):
        if not mod_name.startswith("repro.models"):
            continue
        for cls_name, cls in inspect.getmembers(mod, inspect.isclass):
            if (
                issubclass(cls, Vertex)
                and cls is not Vertex
                and cls.__module__ == mod_name
            ):
                classes[f"{mod_name}.{cls_name}"] = cls
    return classes


MODEL_CLASSES = _model_vertex_classes()


def make_instance(cls) -> Vertex:
    return cls(**REQUIRED_ARGS.get(cls.__name__, {}))


def normalized(state: Any) -> Any:
    """Make snapshots comparable by value.

    Snapshot trees contain objects that compare by identity (``Random``,
    nested helper objects like ``RunningStats``, numpy ``Generator``);
    flatten them all into plain comparable structures.
    """
    if isinstance(state, random.Random):
        return ("<Random>", state.getstate())
    if isinstance(state, dict):
        return {k: normalized(v) for k, v in state.items()}
    if isinstance(state, (list, tuple, deque)):
        return [normalized(v) for v in state]
    if isinstance(state, (set, frozenset)):
        return ("<set>", sorted(repr(v) for v in state))
    if type(state).__name__ == "Generator" and hasattr(state, "bit_generator"):
        return ("<np.Generator>", normalized(state.bit_generator.state))
    if hasattr(state, "tolist") and type(state).__module__.startswith("numpy"):
        return ("<ndarray>", state.tolist())
    if hasattr(state, "__dict__"):
        return (type(state).__name__, normalized(vars(state)))
    return state


def assert_equivalent(a: Vertex, b: Vertex) -> None:
    assert type(a) is type(b)
    assert normalized(a.snapshot_state()) == normalized(b.snapshot_state())


class TestVertexClassDiscovery:
    def test_discovery_found_the_catalog(self):
        # Guard against the walk silently matching nothing.
        assert len(MODEL_CLASSES) >= 40
        names = {cls.__name__ for cls in MODEL_CLASSES.values()}
        assert {"Sum", "ZScoreDetector", "DenseZScoreDetector",
                "CaseAggregator", "RandomWalkSensor"} <= names


@pytest.mark.parametrize(
    "qualname", sorted(MODEL_CLASSES), ids=lambda q: q.rsplit(".", 1)[-1]
)
class TestFreshInstanceRoundTrip:
    def test_pickle_round_trip(self, qualname):
        original = make_instance(MODEL_CLASSES[qualname])
        clone = pickle.loads(pickle.dumps(original))
        assert_equivalent(original, clone)

    def test_snapshot_restore_round_trip(self, qualname):
        original = make_instance(MODEL_CLASSES[qualname])
        snapshot = original.snapshot_state()
        # The snapshot itself must be picklable (it crosses the wire in
        # FinalStateMsg frames) ...
        snapshot = pickle.loads(pickle.dumps(snapshot))
        fresh = make_instance(MODEL_CLASSES[qualname])
        fresh.restore_state(snapshot)
        assert_equivalent(original, fresh)


class TestExercisedStateRoundTrip:
    """Pickle behaviours *after* their state evolved through real phases —
    warm-cache shipping is exactly this."""

    @pytest.mark.parametrize(
        "workload",
        [
            lambda: grid_workload(3, 3, phases=10, seed=3),
            lambda: fig1_workload(phases=10),
            lambda: cpu_heavy_workload(width=3, depth=2, phases=5, grain=50),
            lambda: build_laundering_workload(phases=30, dense=True),
            lambda: build_laundering_workload(phases=30, dense=False),
        ],
        ids=["grid", "fig1", "cpu_heavy", "laundering_dense",
             "laundering_sparse"],
    )
    def test_workload_behaviors_round_trip(self, workload):
        program, phases = workload()
        SerialExecutor(program).run(phases)
        for name, behavior in program.behaviors.items():
            clone = pickle.loads(pickle.dumps(behavior))
            assert_equivalent(behavior, clone)

    def test_restored_behavior_continues_identically(self):
        # A behaviour pickled mid-stream must keep producing the same
        # outputs as the original — the warm-cache shipping contract.
        original = ZScoreDetector(window=5, threshold=1.5)
        h1 = VertexHarness(original, name="det")
        stream = [0.0, 0.1, -0.2, 0.05, 0.0, 9.0, 0.1, -0.1, 8.5, 0.2]
        for p, x in enumerate(stream[:5], start=1):
            h1.step(p, changed={"in": x})
        clone = pickle.loads(pickle.dumps(original))
        h2 = VertexHarness(clone, name="det")
        h2.latched.update(h1.latched)
        for p, x in enumerate(stream[5:], start=6):
            out1 = h1.step(p, changed={"in": x})
            out2 = h2.step(p, changed={"in": x})
            assert out1 == out2
        assert_equivalent(original, clone)


class TestPayloadRoundTrip:
    def test_phase_input(self):
        pi = PhaseInput(3, 2.5, {"src": (1, "reading", [0.5])})
        clone = pickle.loads(pickle.dumps(pi))
        assert clone == pi

    def test_event_and_message(self):
        ev = Event(1.25, "sensor", {"v": 7})
        msg = Message(2, "upstream", ("tuple", "payload"))
        assert pickle.loads(pickle.dumps(ev)) == ev
        assert pickle.loads(pickle.dumps(msg)) == msg
