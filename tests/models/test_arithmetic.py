"""Tests for arithmetic combinators and their Δ emission discipline."""

import pytest

from repro.errors import WorkloadError
from repro.models.arithmetic import Difference, LinearCombiner, Product, Scale, Sum

from tests.conftest import VertexHarness


class TestSum:
    def test_sums_latched_inputs(self):
        h = VertexHarness(Sum())
        assert h.step(1, {"a": 1, "b": 2})[0] == {"out": 3}
        assert h.step(2, {"a": 10})[0] == {"out": 12}  # b latched at 2

    def test_suppresses_unchanged_value(self):
        h = VertexHarness(Sum())
        h.step(1, {"a": 1, "b": 2})
        # a changes 1 -> 2 while b changes 2 -> 1: sum unchanged -> silent.
        assert h.step(2, {"a": 2, "b": 1})[0] == {}

    def test_silent_without_changes(self):
        h = VertexHarness(Sum())
        assert h.step(1, {})[0] == {}

    def test_reset_forgets_last_emission(self):
        s = Sum()
        h = VertexHarness(s)
        h.step(1, {"a": 5})
        s.reset()
        # After reset the suppression memory is gone: the same value is
        # emitted again on the next change.
        assert h.step(2, {"a": 5})[0] == {"out": 5}


class TestProduct:
    def test_multiplies(self):
        h = VertexHarness(Product())
        assert h.step(1, {"a": 3, "b": 4})[0] == {"out": 12}

    def test_zero_then_same_zero_suppressed(self):
        h = VertexHarness(Product())
        assert h.step(1, {"a": 0, "b": 4})[0] == {"out": 0}
        assert h.step(2, {"b": 9})[0] == {}  # still 0


class TestDifference:
    def test_subtracts_named_inputs(self):
        h = VertexHarness(Difference("plus", "minus"))
        assert h.step(1, {"plus": 10, "minus": 4})[0] == {"out": 6}

    def test_silent_until_both_present(self):
        h = VertexHarness(Difference("plus", "minus"))
        assert h.step(1, {"plus": 10})[0] == {}
        assert h.step(2, {"minus": 4})[0] == {"out": 6}


class TestLinearCombiner:
    def test_weighted_sum_with_bias(self):
        h = VertexHarness(LinearCombiner({"x": 2.0, "y": -1.0}, bias=5.0))
        assert h.step(1, {"x": 3, "y": 1})[0] == {"out": 10.0}

    def test_default_for_missing_input(self):
        h = VertexHarness(LinearCombiner({"x": 1.0, "y": 1.0}, default=100.0))
        assert h.step(1, {"x": 1})[0] == {"out": 101.0}

    def test_unweighted_input_rejected(self):
        h = VertexHarness(LinearCombiner({"x": 1.0}))
        with pytest.raises(WorkloadError, match="no weight"):
            h.step(1, {"x": 1, "stranger": 2})

    def test_empty_weights_rejected(self):
        with pytest.raises(WorkloadError):
            LinearCombiner({})


class TestScale:
    def test_affine(self):
        h = VertexHarness(Scale(factor=3.0, offset=1.0))
        assert h.step(1, {"in": 2.0})[0] == {"out": 7.0}

    def test_suppresses_repeat(self):
        h = VertexHarness(Scale(factor=1.0))
        h.step(1, {"in": 4})

        # New message with the same value: output unchanged -> silent.
        assert h.step(2, {"in": 4})[0] == {}
