"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

SPEC = """
<computation name="cli-demo">
  <graph>
    <vertex id="sensor" class="RandomWalkSensor">
      <param name="seed" value="1" type="int"/>
    </vertex>
    <vertex id="avg" class="MovingAverage">
      <param name="window" value="3" type="int"/>
    </vertex>
    <vertex id="out" class="Recorder"/>
    <edge from="sensor" to="avg"/>
    <edge from="avg" to="out"/>
  </graph>
  <simulation timesteps="10" interval="1.0" seed="5"/>
</computation>
"""


@pytest.fixture
def spec_file(tmp_path: Path) -> str:
    path = tmp_path / "demo.xml"
    path.write_text(SPEC)
    return str(path)


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["--version"])
        assert ei.value.code == 0


class TestRun:
    @pytest.mark.parametrize(
        "engine", ["serial", "parallel", "process", "simulated"]
    )
    def test_engines(self, spec_file, capsys, engine):
        assert main(["run", spec_file, "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out
        assert "out (" in out  # records section

    def test_check_flag(self, spec_file, capsys):
        assert main(["run", spec_file, "--engine", "parallel", "--check"]) == 0
        assert "serializable" in capsys.readouterr().out

    def test_process_engine_check_and_workers(self, spec_file, capsys):
        assert main([
            "run", spec_file, "--engine", "process",
            "--workers", "2", "--batch-size", "2", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "process[w=2,b=2]" in out
        assert "is serializable" in out

    def test_stats_json_to_file(self, spec_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "stats.json"
        assert main([
            "run", spec_file, "--engine", "process", "--no-fuse",
            "--stats-json", str(out_path),
        ]) == 0
        assert "stats written to" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["spec"] == "cli-demo"
        assert payload["engine"] == "process[w=2]"
        assert payload["phases_run"] == 10
        stats = payload["stats"]
        assert stats["num_workers"] == 2
        assert "ipc_round_trips" in stats
        assert "serialization_bytes" in stats
        assert "per_worker_utilization" in stats

    def test_stats_json_to_stdout(self, spec_file, capsys):
        import json

        assert main([
            "run", spec_file, "--engine", "parallel", "--stats-json", "-",
        ]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        end = out.rindex("}") + 1
        payload = json.loads(out[start:end])
        assert payload["engine"].startswith("parallel[")
        assert "lock" in payload["stats"]

    def test_stats_json_serial_engine(self, spec_file, tmp_path):
        import json

        out_path = tmp_path / "stats.json"
        assert main([
            "run", spec_file, "--engine", "serial", "--no-fuse",
            "--stats-json", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["engine"] == "serial"
        assert payload["stats"] == {}

    def test_fuse_default_on_and_checked(self, spec_file, capsys):
        assert main([
            "run", spec_file, "--engine", "parallel", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "+fused[" in out
        assert "fusion:" in out
        assert "is serializable" in out

    def test_no_fuse_reproduces_baseline_label(self, spec_file, capsys):
        assert main([
            "run", spec_file, "--engine", "parallel", "--no-fuse", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "+fused[" not in out
        assert "fusion:" not in out
        assert "is serializable" in out

    def test_max_records_truncation(self, spec_file, capsys):
        assert main(["run", spec_file, "--max-records", "2"]) == 0
        assert "more" in capsys.readouterr().out

    def test_missing_spec_is_error(self, capsys):
        assert main(["run", "/nonexistent.xml"]) == 1
        assert "error" in capsys.readouterr().err

    def test_deterministic_across_engines(self, spec_file, capsys):
        def body(out: str) -> str:
            # Drop the engine-name header and the suppression/coalescing
            # summaries the parallel engine prints (cone mode enables
            # both by default; the serial oracle has neither).
            lines = out.split("\n")[1:]
            return "\n".join(
                l
                for l in lines
                if not l.startswith(("suppression:", "coalescing:"))
            )

        main(["run", spec_file, "--engine", "serial"])
        serial_out = capsys.readouterr().out
        main(["run", spec_file, "--engine", "parallel"])
        parallel_out = capsys.readouterr().out
        # The records section must match (headers differ by engine name).
        assert body(serial_out) == body(parallel_out)


KEYED_SPEC = """
<computation name="cli-keyed">
  <graph>
    <vertex id="txn[a]" class="RandomWalkSensor">
      <param name="seed" value="1" type="int"/>
    </vertex>
    <vertex id="avg[a]" class="MovingAverage">
      <param name="window" value="3" type="int"/>
    </vertex>
    <vertex id="out[a]" class="Recorder"/>
    <edge from="txn[a]" to="avg[a]"/>
    <edge from="avg[a]" to="out[a]"/>
    <vertex id="txn[b]" class="RandomWalkSensor">
      <param name="seed" value="2" type="int"/>
    </vertex>
    <vertex id="avg[b]" class="MovingAverage">
      <param name="window" value="4" type="int"/>
    </vertex>
    <vertex id="out[b]" class="Recorder"/>
    <edge from="txn[b]" to="avg[b]"/>
    <edge from="avg[b]" to="out[b]"/>
    <vertex id="txn[c]" class="RandomWalkSensor">
      <param name="seed" value="3" type="int"/>
    </vertex>
    <vertex id="out[c]" class="Recorder"/>
    <edge from="txn[c]" to="out[c]"/>
  </graph>
  <simulation timesteps="12" interval="1.0" seed="7"/>
</computation>
"""


@pytest.fixture
def keyed_spec_file(tmp_path: Path) -> str:
    path = tmp_path / "keyed.xml"
    path.write_text(KEYED_SPEC)
    return str(path)


class TestShardedRun:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_sharded_check_passes(self, keyed_spec_file, capsys, shards):
        assert main([
            "run", keyed_spec_file, "--shards", str(shards),
            "--engine", "serial", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert f"sharded[n={shards},serial]" in out
        assert "sharded-vs-oracle: equivalent" in out
        assert "stats schema OK" in out

    def test_sharded_parallel_engine(self, keyed_spec_file, capsys):
        assert main([
            "run", keyed_spec_file, "--shards", "2", "--engine", "parallel",
            "--threads", "2", "--check",
        ]) == 0
        assert "sharded[n=2,parallel]" in capsys.readouterr().out

    def test_sharded_no_fuse(self, keyed_spec_file, capsys):
        assert main([
            "run", keyed_spec_file, "--shards", "2", "--no-fuse", "--check",
        ]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_key_by_source_shards_every_source_alone(
        self, keyed_spec_file, capsys
    ):
        assert main([
            "run", keyed_spec_file, "--shards", "2", "--key-by", "source",
            "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 keys" in out

    def test_non_separable_spec_fails_cleanly(self, spec_file, capsys):
        # The plain 3-vertex chain has one source; sharding it across 2
        # is fine — but key_by requires routable keys; build a truly
        # cross-key spec instead via the unkeyed demo feeding one sink.
        assert main(["run", spec_file, "--shards", "2", "--check"]) == 0
        out = capsys.readouterr().out
        assert "1 keys" in out


class TestInfoValidate:
    def test_info(self, spec_file, capsys):
        assert main(["info", spec_file]) == 0
        out = capsys.readouterr().out
        assert "m-sequence" in out
        assert "RandomWalkSensor" in out
        assert "depth: 3" in out

    def test_validate_ok(self, spec_file, capsys):
        assert main(["validate", spec_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<computation><graph><vertex id='v'/></graph></computation>")
        assert main(["validate", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestSpeedup:
    def test_sweep(self, spec_file, capsys):
        assert main(
            ["speedup", spec_file, "--workers", "1,2", "--processors", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert out.count("\n") >= 3

    def test_bad_workers(self, spec_file, capsys):
        assert main(["speedup", spec_file, "--workers", "a,b"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_empty_workers(self, spec_file, capsys):
        assert main(["speedup", spec_file, "--workers", ","]) == 2


class TestFigures:
    def test_renders(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "m-sequence: [3, 3, 4, 5, 5, 6, 7, 7]" in out
        assert "(h) (4,1) executed" in out
        assert "legend" in out


class TestFuzz:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--runs", "10", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "distinct interleavings" in out
        assert "all serializable" in out

    def test_single_policy_selection(self, capsys):
        assert main(
            ["fuzz", "--runs", "5", "--seed", "1", "--policy", "round-robin"]
        ) == 0

    def test_injected_fault_is_found(self, capsys):
        assert main(
            ["fuzz", "--runs", "50", "--seed", "0",
             "--inject", "unlocked_commit"]
        ) == 0
        out = capsys.readouterr().out
        assert "detected at run" in out
        assert "replay" in out  # the reproduction recipe is printed

    def test_campaign_is_deterministic(self, capsys):
        assert main(["fuzz", "--runs", "8", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--runs", "8", "--seed", "3"]) == 0
        assert capsys.readouterr().out == first


class TestShardedFuzz:
    def test_sharded_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--shards", "2", "--runs", "3",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "sharded" in out

    def test_sharded_rejects_inject(self, capsys):
        assert main([
            "fuzz", "--shards", "2", "--runs", "3", "--seed", "0",
            "--inject", "unlocked_commit",
        ]) == 2
        assert "--inject" in capsys.readouterr().err


SERVE_SPEC = Path("specs/serve_accounts.xml")


def _serve_ndjson(path: Path, ticks: int = 40, seed: int = 42) -> int:
    """Deterministic keyed NDJSON replay fixture; returns line count."""
    import json as _json
    import random as _random

    lines = []
    for key in ("a0", "a1", "a2"):
        rng = _random.Random(f"{seed}|{key}")
        for tick in range(ticks):
            if rng.random() < 0.1:
                continue
            amount = 40.0 + 20.0 * rng.random()
            if rng.random() < 0.05:
                amount *= 8.0
            ts = round(tick + rng.gauss(0.0, 0.05), 4)
            arrival = round(tick + 0.3 + 0.4 * rng.random(), 4)
            lines.append((max(ts, arrival), _json.dumps({
                "timestamp": ts,
                "source": f"txn[{key}]",
                "value": round(amount, 3),
                "arrival": max(ts, arrival),
            })))
    lines.sort()
    path.write_text("\n".join(line for _, line in lines) + "\n")
    return len(lines)


class TestServe:
    @pytest.mark.parametrize("engine", ["parallel", "process"])
    def test_replay_spot_checks_pass(self, tmp_path, capsys, engine):
        from repro.analysis.stats import validate_serve_stats

        events = tmp_path / "events.ndjson"
        n_events = _serve_ndjson(events)
        out_path = tmp_path / "stats.json"
        argv = [
            "serve", str(SERVE_SPEC), "--engine", engine,
            "--input", str(events), "--check-sample", "1",
            "--stats-json", str(out_path),
        ]
        if engine == "process":
            argv += ["--workers", "2", "--ipc-batch", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"serve[{engine}]" in out
        assert "0 failed" in out

        import json as _json

        stats = _json.loads(out_path.read_text())
        assert stats["spec"] == "serve-accounts"
        serve = stats["serve"]
        assert validate_serve_stats(serve) == []
        assert serve["events_accepted"] == n_events
        assert serve["phases_retired"] > 0
        assert serve["spot_checks_passed"] == serve["phases_retired"]
        assert serve["spot_checks_failed"] == 0

    def test_replay_sharded(self, tmp_path, capsys):
        events = tmp_path / "events.ndjson"
        _serve_ndjson(events)
        out_path = tmp_path / "stats.json"
        assert main([
            "serve", str(SERVE_SPEC), "--shards", "2", "--key-by", "bracket",
            "--input", str(events), "--check-sample", "1",
            "--stats-json", str(out_path),
        ]) == 0
        import json as _json

        stats = _json.loads(out_path.read_text())
        assert stats["sharding"]["num_shards"] == 2
        assert stats["serve"]["spot_checks_failed"] == 0

    def test_replay_deterministic_across_engines(self, tmp_path, capsys):
        events = tmp_path / "events.ndjson"
        _serve_ndjson(events)
        ingested = {}
        for engine in ("parallel", "process"):
            out_path = tmp_path / f"{engine}.json"
            assert main([
                "serve", str(SERVE_SPEC), "--engine", engine,
                "--input", str(events), "--stats-json", str(out_path),
            ]) == 0
            import json as _json

            serve = _json.loads(out_path.read_text())["serve"]
            ingested[engine] = (
                serve["phases_ingested"], serve["events_accepted"]
            )
        assert ingested["parallel"] == ingested["process"]


def _processes_with_marker(marker: str) -> list:
    """PIDs whose environment carries *marker* (linux /proc scan)."""
    import os

    needle = f"REPRO_TEST_MARKER={marker}".encode()
    hits = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/environ", "rb") as fh:
                if needle in fh.read():
                    hits.append(int(entry))
        except OSError:
            continue
    return hits


@pytest.mark.skipif(
    not Path("/proc").is_dir(), reason="needs /proc for the orphan scan"
)
class TestGracefulSignals:
    """SIGINT/SIGTERM drain in-flight work, emit stats, exit 0, and the
    process backend leaves no orphaned workers behind."""

    def _spawn(self, argv, marker, tmp_path):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["REPRO_TEST_MARKER"] = marker
        env["PYTHONPATH"] = str(Path("src").resolve())
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=str(tmp_path),
            text=True,
        )

    def _wait_for_line(self, proc, needle, timeout=30.0):
        import select
        import time

        deadline = time.monotonic() + timeout
        lines = []
        while time.monotonic() < deadline:
            ready, _, _ = select.select([proc.stdout], [], [], 0.25)
            if not ready:
                if proc.poll() is not None:
                    break
                continue
            line = proc.stdout.readline()
            if not line:
                break
            lines.append(line)
            if needle in line:
                return lines
        raise AssertionError(
            f"never saw {needle!r} in output:\n{''.join(lines)}"
        )

    def test_run_process_engine_sigint(self, tmp_path):
        import json as _json
        import signal as _signal
        import uuid

        marker = f"orphan-{uuid.uuid4().hex}"
        stats_path = tmp_path / "stats.json"
        spec = Path("specs/keyed_accounts.xml").resolve()
        proc = self._spawn(
            ["run", str(spec), "--engine", "process", "--workers", "2",
             "--stats-json", str(stats_path)],
            marker, tmp_path,
        )
        try:
            import time

            # Wait until worker processes exist: the signal handler is
            # installed before the pool spawns, so once workers carry
            # the marker the parent is guaranteed to trap SIGINT.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(_processes_with_marker(marker)) >= 2:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("workers never spawned")
            proc.send_signal(_signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        # The final stats json was still written on the signal path.
        stats = _json.loads(stats_path.read_text())
        assert stats["spec"] == "keyed-accounts"
        assert stats["phases_run"] >= 0
        assert _processes_with_marker(marker) == []

    def test_serve_http_sigterm(self, tmp_path):
        import json as _json
        import signal as _signal
        import uuid

        marker = f"orphan-{uuid.uuid4().hex}"
        stats_path = tmp_path / "stats.json"
        spec = Path("specs/serve_accounts.xml").resolve()
        proc = self._spawn(
            ["serve", str(spec), "--port", "0",
             "--stats-json", str(stats_path)],
            marker, tmp_path,
        )
        try:
            self._wait_for_line(proc, "serving ")
            proc.send_signal(_signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        stats = _json.loads(stats_path.read_text())
        assert "serve" in stats
        assert _processes_with_marker(marker) == []
