"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

SPEC = """
<computation name="cli-demo">
  <graph>
    <vertex id="sensor" class="RandomWalkSensor">
      <param name="seed" value="1" type="int"/>
    </vertex>
    <vertex id="avg" class="MovingAverage">
      <param name="window" value="3" type="int"/>
    </vertex>
    <vertex id="out" class="Recorder"/>
    <edge from="sensor" to="avg"/>
    <edge from="avg" to="out"/>
  </graph>
  <simulation timesteps="10" interval="1.0" seed="5"/>
</computation>
"""


@pytest.fixture
def spec_file(tmp_path: Path) -> str:
    path = tmp_path / "demo.xml"
    path.write_text(SPEC)
    return str(path)


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["--version"])
        assert ei.value.code == 0


class TestRun:
    @pytest.mark.parametrize(
        "engine", ["serial", "parallel", "process", "simulated"]
    )
    def test_engines(self, spec_file, capsys, engine):
        assert main(["run", spec_file, "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out
        assert "out (" in out  # records section

    def test_check_flag(self, spec_file, capsys):
        assert main(["run", spec_file, "--engine", "parallel", "--check"]) == 0
        assert "serializable" in capsys.readouterr().out

    def test_process_engine_check_and_workers(self, spec_file, capsys):
        assert main([
            "run", spec_file, "--engine", "process",
            "--workers", "2", "--batch-size", "2", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "process[w=2,b=2]" in out
        assert "is serializable" in out

    def test_stats_json_to_file(self, spec_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "stats.json"
        assert main([
            "run", spec_file, "--engine", "process", "--no-fuse",
            "--stats-json", str(out_path),
        ]) == 0
        assert "stats written to" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["spec"] == "cli-demo"
        assert payload["engine"] == "process[w=2]"
        assert payload["phases_run"] == 10
        stats = payload["stats"]
        assert stats["num_workers"] == 2
        assert "ipc_round_trips" in stats
        assert "serialization_bytes" in stats
        assert "per_worker_utilization" in stats

    def test_stats_json_to_stdout(self, spec_file, capsys):
        import json

        assert main([
            "run", spec_file, "--engine", "parallel", "--stats-json", "-",
        ]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        end = out.rindex("}") + 1
        payload = json.loads(out[start:end])
        assert payload["engine"].startswith("parallel[")
        assert "lock" in payload["stats"]

    def test_stats_json_serial_engine(self, spec_file, tmp_path):
        import json

        out_path = tmp_path / "stats.json"
        assert main([
            "run", spec_file, "--engine", "serial", "--no-fuse",
            "--stats-json", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["engine"] == "serial"
        assert payload["stats"] == {}

    def test_fuse_default_on_and_checked(self, spec_file, capsys):
        assert main([
            "run", spec_file, "--engine", "parallel", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "+fused[" in out
        assert "fusion:" in out
        assert "is serializable" in out

    def test_no_fuse_reproduces_baseline_label(self, spec_file, capsys):
        assert main([
            "run", spec_file, "--engine", "parallel", "--no-fuse", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "+fused[" not in out
        assert "fusion:" not in out
        assert "is serializable" in out

    def test_max_records_truncation(self, spec_file, capsys):
        assert main(["run", spec_file, "--max-records", "2"]) == 0
        assert "more" in capsys.readouterr().out

    def test_missing_spec_is_error(self, capsys):
        assert main(["run", "/nonexistent.xml"]) == 1
        assert "error" in capsys.readouterr().err

    def test_deterministic_across_engines(self, spec_file, capsys):
        main(["run", spec_file, "--engine", "serial"])
        serial_out = capsys.readouterr().out
        main(["run", spec_file, "--engine", "parallel"])
        parallel_out = capsys.readouterr().out
        # The records section must match (headers differ by engine name).
        assert serial_out.split("\n", 1)[1] == parallel_out.split("\n", 1)[1]


class TestInfoValidate:
    def test_info(self, spec_file, capsys):
        assert main(["info", spec_file]) == 0
        out = capsys.readouterr().out
        assert "m-sequence" in out
        assert "RandomWalkSensor" in out
        assert "depth: 3" in out

    def test_validate_ok(self, spec_file, capsys):
        assert main(["validate", spec_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<computation><graph><vertex id='v'/></graph></computation>")
        assert main(["validate", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestSpeedup:
    def test_sweep(self, spec_file, capsys):
        assert main(
            ["speedup", spec_file, "--workers", "1,2", "--processors", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert out.count("\n") >= 3

    def test_bad_workers(self, spec_file, capsys):
        assert main(["speedup", spec_file, "--workers", "a,b"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_empty_workers(self, spec_file, capsys):
        assert main(["speedup", spec_file, "--workers", ","]) == 2


class TestFigures:
    def test_renders(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "m-sequence: [3, 3, 4, 5, 5, 6, 7, 7]" in out
        assert "(h) (4,1) executed" in out
        assert "legend" in out


class TestFuzz:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--runs", "10", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "distinct interleavings" in out
        assert "all serializable" in out

    def test_single_policy_selection(self, capsys):
        assert main(
            ["fuzz", "--runs", "5", "--seed", "1", "--policy", "round-robin"]
        ) == 0

    def test_injected_fault_is_found(self, capsys):
        assert main(
            ["fuzz", "--runs", "50", "--seed", "0",
             "--inject", "unlocked_commit"]
        ) == 0
        out = capsys.readouterr().out
        assert "detected at run" in out
        assert "replay" in out  # the reproduction recipe is printed

    def test_campaign_is_deterministic(self, capsys):
        assert main(["fuzz", "--runs", "8", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--runs", "8", "--seed", "3"]) == 0
        assert capsys.readouterr().out == first
