"""Tests for event-stream generators."""

import pytest

from repro.errors import WorkloadError
from repro.events import assemble_phases
from repro.streams.generators import (
    bursty_events,
    merge_streams,
    phase_signals,
    poisson_arrival_events,
    regular_events,
)


class TestRegular:
    def test_count_and_spacing(self):
        evs = regular_events("a", 5, interval=2.0, start=1.0)
        assert len(evs) == 5
        assert [e.timestamp for e in evs] == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert [e.value for e in evs] == [0, 1, 2, 3, 4]

    def test_value_fn(self):
        evs = regular_events("a", 3, value_fn=lambda i: i * i)
        assert [e.value for e in evs] == [0, 1, 4]

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            regular_events("a", -1)
        with pytest.raises(WorkloadError):
            regular_events("a", 1, interval=0)


class TestPoisson:
    def test_deterministic_and_within_horizon(self):
        a = poisson_arrival_events("s", rate=2.0, horizon=50.0, seed=4)
        b = poisson_arrival_events("s", rate=2.0, horizon=50.0, seed=4)
        assert a == b
        assert all(0 <= e.timestamp < 50.0 for e in a)

    def test_rate_controls_count(self):
        sparse = poisson_arrival_events("s", rate=0.5, horizon=200.0, seed=1)
        dense = poisson_arrival_events("s", rate=5.0, horizon=200.0, seed=1)
        assert len(dense) > len(sparse) * 3

    def test_timestamps_sorted(self):
        evs = poisson_arrival_events("s", rate=3.0, horizon=30.0, seed=2)
        times = [e.timestamp for e in evs]
        assert times == sorted(times)

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            poisson_arrival_events("s", rate=0, horizon=1)


class TestBursty:
    def test_burst_structure(self):
        evs = bursty_events("s", bursts=3, burst_size=5, seed=3)
        assert len(evs) == 15
        times = [e.timestamp for e in evs]
        assert times == sorted(times)

    def test_gaps_exceed_intra_spacing(self):
        evs = bursty_events(
            "s", bursts=2, burst_size=4, burst_gap=100.0, intra_gap=0.1, seed=5
        )
        # The gap between burst 1's last event and burst 2's first event
        # dwarfs intra-burst spacing.
        gap = evs[4].timestamp - evs[3].timestamp
        intra = evs[1].timestamp - evs[0].timestamp
        assert gap > intra * 50

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            bursty_events("s", bursts=1, burst_size=0)


class TestMerge:
    def test_merged_order_and_phases(self):
        a = regular_events("a", 3, interval=2.0)  # t = 0, 2, 4
        b = regular_events("b", 3, interval=2.0, start=0.0)  # same instants
        merged = merge_streams(a, b)
        phases = assemble_phases(merged)
        assert len(phases) == 3
        assert all(set(p.values) == {"a", "b"} for p in phases)

    def test_unsorted_stream_rejected(self):
        from repro.events import Event

        bad = [Event(2.0, "x", 1), Event(1.0, "x", 2)]
        with pytest.raises(WorkloadError):
            merge_streams(bad)

    def test_three_way_merge(self):
        a = regular_events("a", 2, interval=3.0)
        b = regular_events("b", 2, interval=3.0, start=1.0)
        c = regular_events("c", 2, interval=3.0, start=2.0)
        merged = merge_streams(a, b, c)
        times = [e.timestamp for e in merged]
        assert times == sorted(times)
        assert len(merged) == 6


class TestPhaseSignals:
    def test_sequential(self):
        sigs = phase_signals(4, interval=0.5)
        assert [s.phase for s in sigs] == [1, 2, 3, 4]
        assert [s.timestamp for s in sigs] == [0.0, 0.5, 1.0, 1.5]
        assert all(not s.values for s in sigs)

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            phase_signals(-1)
