"""Tests for synthetic workload builders."""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.serial import SerialExecutor
from repro.errors import WorkloadError
from repro.graph.analysis import depth, width
from repro.runtime.engine import ParallelEngine
from repro.streams.workloads import (
    fanin_workload,
    fig1_workload,
    grid_workload,
    pipeline_workload,
)


@pytest.mark.parametrize(
    "builder,kwargs",
    [
        (pipeline_workload, dict(depth=5, phases=20)),
        (fanin_workload, dict(fan=5, phases=20)),
        (grid_workload, dict(width=3, depth=3, phases=20)),
        (fig1_workload, dict(phases=20)),
    ],
)
def test_workloads_run_and_serialize(builder, kwargs):
    prog, phases = builder(**kwargs)
    serial = SerialExecutor(prog).run(phases)
    par = ParallelEngine(prog, num_threads=2).run(phases)
    assert_serializable(serial, par)
    assert serial.execution_count > 0


class TestShapes:
    def test_pipeline_shape(self):
        prog, _ = pipeline_workload(depth=6, phases=5)
        assert depth(prog.graph) == 6
        assert width(prog.graph) == 1

    def test_fanin_shape(self):
        prog, _ = fanin_workload(fan=7, phases=5)
        assert width(prog.graph) == 7
        assert depth(prog.graph) == 2

    def test_grid_shape(self):
        prog, _ = grid_workload(width=4, depth=3, phases=5)
        assert depth(prog.graph) == 3
        assert width(prog.graph) == 4

    def test_fig1_fully_loaded(self):
        """Chatty sources: every vertex executes every phase (the fully
        occupied pipeline of Figure 1)."""
        prog, phases = fig1_workload(phases=10)
        res = SerialExecutor(prog).run(phases)
        assert res.execution_count == 10 * 10

    def test_deterministic_per_seed(self):
        p1, ph = grid_workload(3, 3, phases=10, seed=5)
        p2, _ = grid_workload(3, 3, phases=10, seed=5)
        r1 = SerialExecutor(p1).run(ph)
        r2 = SerialExecutor(p2).run(ph)
        assert r1.records == r2.records

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            pipeline_workload(depth=1)
        with pytest.raises(WorkloadError):
            fanin_workload(fan=0)
        with pytest.raises(WorkloadError):
            grid_workload(width=0, depth=1)
