"""Integration tests reproducing every figure and measurement of the paper.

One test class per experiment in DESIGN.md's per-experiment index; the
benchmarks print the corresponding tables, these tests pin the shapes.
"""

import pytest

from repro.analysis.ascii_viz import render_frames
from repro.core.invariants import InvariantChecker
from repro.core.state import SchedulerState
from repro.core.tracer import ExecutionTracer, max_concurrent_phases
from repro.errors import NumberingError
from repro.graph.generators import (
    fig1_graph,
    fig2_graph,
    fig2a_numbering,
    fig2b_numbering,
    fig3_graph,
)
from repro.graph.numbering import Numbering, compute_S, number_graph, verify_numbering
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.simulator.metrics import speedup_curve
from repro.baselines.barrier import barrier_simulated_engine
from repro.streams.workloads import fig1_workload, grid_workload


class TestFigure1:
    """A 10-node graph in which 5 phases are being executed concurrently."""

    def test_five_phases_in_flight(self):
        prog, phases = fig1_workload(phases=40)
        tracer = ExecutionTracer()
        # Plenty of workers and processors: pipelining limited only by the
        # graph depth (5), exactly as the figure depicts.
        engine = SimulatedEngine(
            prog,
            num_workers=10,
            num_processors=10,
            cost_model=CostModel(compute_cost=1.0, bookkeeping_cost=0.001),
            tracer=tracer,
        )
        engine.run(phases)
        observed = max_concurrent_phases(tracer.intervals())
        assert observed == 5

    def test_barrier_baseline_has_one_phase_in_flight(self):
        prog, phases = fig1_workload(phases=40)
        tracer = ExecutionTracer()
        barrier_simulated_engine(
            prog,
            num_workers=10,
            num_processors=10,
            cost_model=CostModel(compute_cost=1.0, bookkeeping_cost=0.001),
            tracer=tracer,
        ).run(phases)
        assert max_concurrent_phases(tracer.intervals()) == 1

    def test_pipelining_cannot_exceed_depth(self):
        from repro.graph.analysis import max_pipelining_depth

        assert max_pipelining_depth(fig1_graph()) == 5


class TestFigure2:
    """Two topologically sorted numberings; (a) fails the restriction."""

    def test_satisfactory_numbering_and_m_sequence(self):
        nb = Numbering.from_mapping(fig2_graph(), fig2b_numbering())
        assert nb.m_sequence() == [3, 3, 4, 5, 5, 6, 7, 7]

    def test_unsatisfactory_numbering_rejected_with_papers_witness(self):
        g = fig2_graph()
        with pytest.raises(NumberingError):
            verify_numbering(g, fig2a_numbering())
        assert compute_S(g, fig2a_numbering(), 2) == {1, 2, 3, 5}

    def test_algorithm_recovers_a_satisfactory_numbering(self):
        nb = number_graph(fig2_graph())
        verify_numbering(nb.graph, nb.index_of)
        assert nb.m_sequence() == [3, 3, 4, 5, 5, 6, 7, 7]


class TestFigure3:
    """Eight steps in the execution of a computation graph, with the
    partial / full / ready membership of every vertex-phase pair."""

    def run_steps(self):
        nb = number_graph(fig3_graph())
        state = SchedulerState(nb, checker=InvariantChecker())
        tracer = ExecutionTracer()
        steps = []

        def snap(label):
            steps.append(tracer.capture_sets(state, label))

        state.start_phase()
        snap("(a) Phase 1 initiated")
        state.complete_execution(1, 1, [3])
        snap("(b) (1,1) executed, generated output")
        state.start_phase()
        snap("(c) Phase 2 initiated")
        state.complete_execution(1, 2, [])
        snap("(d) (1,2) executed, generated no output")
        state.complete_execution(2, 1, [3, 4])
        snap("(e) (2,1) executed, generated output")
        state.complete_execution(2, 2, [3, 4])
        snap("(f) (2,2) executed, generated output")
        state.complete_execution(3, 1, [5])
        snap("(g) (3,1) executed, generated output")
        state.complete_execution(4, 1, [5, 6])
        snap("(h) (4,1) executed, generated output")
        return steps

    def test_memberships_per_step(self):
        a, b, c, d, e, f, g, h = self.run_steps()
        # (a): sources ready for phase 1.
        assert a.ready == {(1, 1), (2, 1)} and not a.partial
        # (b): (3,1) has a partial input set (diamond).
        assert b.partial == {(3, 1)}
        assert b.ready == {(2, 1)}
        # (c): phase-2 source pairs full; (1,2) ready, (2,2) behind (2,1).
        assert {(1, 2), (2, 2)} <= c.full
        assert c.ready == {(2, 1), (1, 2)}
        # (d): no output, so no new partial pairs.
        assert d.partial == {(3, 1)}
        # (e): (3,1) and (4,1) now full AND ready.
        assert {(3, 1), (4, 1)} <= e.ready
        assert not e.partial
        # (f): phase-2 copies are full but not ready (phase 1 pairs ahead).
        assert {(3, 2), (4, 2)} <= f.full
        assert f.ready == {(3, 1), (4, 1)}
        # (g): (5,1) partial — vertex 4 has not yet spoken.
        assert g.partial == {(5, 1)}
        # (h): everything for phase 1 is full+ready.
        assert {(5, 1), (6, 1)} <= h.ready

    def test_frames_render(self):
        steps = self.run_steps()
        text = render_frames(steps, n=6, phases=[1, 2])
        assert "(a) Phase 1 initiated" in text
        assert "legend" in text
        # Step (b): vertex 3 phase 1 is partial.
        assert "3:P" in text


class TestSection4Speedup:
    """The paper's measurement: ~50% speedup with 2 computation threads on
    a dual-processor machine, and the near-linear prediction."""

    def workload(self):
        return grid_workload(4, 4, phases=40, seed=9)

    def test_dual_processor_band(self):
        prog, phases = self.workload()
        cm = CostModel(compute_cost=1.0, bookkeeping_cost=0.35, phase_start_cost=0.1)
        pts = speedup_curve(prog, phases, cm, [1, 2], processors=2)
        assert 1.25 <= pts[1].speedup <= 1.85

    def test_three_threads_contending_on_two_processors(self):
        """The paper explains the sub-linear result by the env thread: 2
        workers + env = 3 threads on 2 CPUs.  Lock contention must rise
        sharply from the 1-worker to the 2-worker configuration."""
        prog, phases = self.workload()
        cm = CostModel(compute_cost=1.0, bookkeeping_cost=0.35, phase_start_cost=0.1)
        pts = speedup_curve(prog, phases, cm, [1, 2], processors=2)
        assert pts[1].lock_contention > pts[0].lock_contention * 2

    def test_near_linear_prediction(self):
        prog, phases = self.workload()
        cm = CostModel(compute_cost=50.0, bookkeeping_cost=0.05)
        pts = speedup_curve(prog, phases, cm, [1, 2, 4], processors=lambda k: k + 1)
        assert pts[1].speedup > 1.85
        assert pts[2].efficiency > 0.85
