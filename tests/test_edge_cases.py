"""Edge cases and robustness tests across engines."""

import pytest

from repro.analysis.serializability import assert_serializable
from repro.core.program import Program
from repro.core.serial import SerialExecutor
from repro.core.vertex import EMIT_NOTHING, FunctionVertex, PassthroughSource
from repro.events import PhaseInput
from repro.graph.model import ComputationGraph
from repro.models.sensors import SilentSource
from repro.runtime.engine import ParallelEngine
from repro.runtime.environment import EnvironmentConfig
from repro.simulator.costs import CostModel
from repro.simulator.machine import SimulatedEngine
from repro.streams.workloads import grid_workload, pipeline_workload

from tests.conftest import ScriptedSource, forward_vertex, signals, sum_vertex


class TestDegenerateGraphs:
    def engines(self, prog):
        return [
            SerialExecutor(prog),
            ParallelEngine(prog, num_threads=2),
            SimulatedEngine(prog, num_workers=2),
        ]

    def test_single_vertex_graph(self):
        g = ComputationGraph()
        g.add_vertex("only")
        prog = Program(g, {"only": ScriptedSource({1: "x", 3: "y"})})
        results = [e.run(signals(3)) for e in self.engines(prog)]
        for r in results[1:]:
            assert_serializable(results[0], r)
        # A source with no successors is also a sink: its emissions are
        # recorded (the sink-emit-records convention).
        assert results[0].records == {"only": [(1, "x"), (3, "y")]}

    def test_isolated_vertices(self):
        g = ComputationGraph.from_edges(
            [("a", "b")], extra_vertices=["lonely1", "lonely2"]
        )
        prog = Program(
            g,
            {
                "a": ScriptedSource({1: 1, 2: 2}),
                "b": forward_vertex(),
                "lonely1": ScriptedSource({2: "solo"}),
                "lonely2": SilentSource(),
            },
        )
        results = [e.run(signals(2)) for e in self.engines(prog)]
        for r in results[1:]:
            assert_serializable(results[0], r)

    def test_all_silent_sources(self):
        """Nothing ever emits: phases still complete (the pure-absence
        case), with exactly sources x phases executions."""
        g = ComputationGraph.from_edges([("s1", "mid"), ("s2", "mid"), ("mid", "t")])
        prog = Program(
            g,
            {
                "s1": SilentSource(),
                "s2": SilentSource(),
                "mid": sum_vertex(),
                "t": forward_vertex(),
            },
        )
        for engine in self.engines(prog):
            res = engine.run(signals(5))
            assert res.execution_count == 2 * 5
            assert res.message_count == 0

    def test_single_phase(self):
        prog, phases = grid_workload(3, 3, phases=1, seed=1)
        results = [e.run(phases) for e in self.engines(prog)]
        for r in results[1:]:
            assert_serializable(results[0], r)

    def test_many_phases_tiny_graph(self):
        prog, _ = pipeline_workload(depth=2, phases=1)
        phases = signals(500)
        serial = SerialExecutor(prog).run(phases)
        par = ParallelEngine(prog, num_threads=4).run(phases)
        assert_serializable(serial, par)


class TestPayloadKinds:
    def make_prog(self, payloads):
        g = ComputationGraph.from_edges([("src", "fwd")])
        return Program(
            g,
            {
                "src": ScriptedSource(dict(enumerate(payloads, start=1))),
                "fwd": forward_vertex(),
            },
        )

    def test_falsy_payloads_are_messages(self):
        """0, False, '', empty tuple — all legitimate message values."""
        payloads = [0, False, "", (), 0.0]
        prog = self.make_prog(payloads)
        serial = SerialExecutor(prog).run(signals(len(payloads)))
        assert [v for _p, v in serial.records["fwd"]] == payloads

    def test_none_cannot_be_distinguished(self):
        """Returning None from on_execute means 'no message' by contract;
        a behaviour that must send 'nothing happened' sends a sentinel."""
        prog = self.make_prog([None, 1])
        serial = SerialExecutor(prog).run(signals(2))
        # Phase 1 produced no message; only phase 2 flowed through.
        assert serial.records["fwd"] == [(2, 1)]

    def test_rich_payloads(self):
        payloads = [{"k": [1, 2]}, ("tuple", 3), "text"]
        prog = self.make_prog(payloads)
        serial = SerialExecutor(prog).run(signals(3))
        par = ParallelEngine(prog, num_threads=2).run(signals(3))
        assert_serializable(serial, par)


class TestSimulatedEngineCostPaths:
    def test_dequeue_cost_counts(self):
        prog, phases = pipeline_workload(depth=3, phases=10)
        fast = SimulatedEngine(
            prog, num_workers=1, num_processors=1,
            cost_model=CostModel(compute_cost=1.0, dequeue_cost=0.0),
        ).run(phases)
        slow = SimulatedEngine(
            prog, num_workers=1, num_processors=1,
            cost_model=CostModel(compute_cost=1.0, dequeue_cost=0.5),
        ).run(phases)
        assert slow.wall_time > fast.wall_time
        assert slow.records == fast.records

    def test_env_interval_paces_phases(self):
        prog, phases = pipeline_workload(depth=2, phases=10)
        paced = SimulatedEngine(
            prog, num_workers=2,
            cost_model=CostModel(compute_cost=0.1, env_interval=5.0),
        ).run(phases)
        # 10 phases at >= 5 apart: makespan at least ~45.
        assert paced.wall_time >= 45.0

    def test_prepare_cost_under_lock(self):
        prog, phases = pipeline_workload(depth=3, phases=10)
        res = SimulatedEngine(
            prog, num_workers=2,
            cost_model=CostModel(compute_cost=0.1, prepare_cost=0.2),
        ).run(phases)
        assert res.stats["lock"]["busy_time"] > 0

    def test_zero_cost_model_still_correct(self):
        prog, phases = grid_workload(3, 3, phases=10, seed=2)
        serial = SerialExecutor(prog).run(phases)
        res = SimulatedEngine(
            prog, num_workers=3,
            cost_model=CostModel(
                compute_cost=0.0, bookkeeping_cost=0.0, phase_start_cost=0.0
            ),
        ).run(phases)
        assert_serializable(serial, res)
        assert res.wall_time == 0.0


class TestFlowControlMemory:
    def test_flow_control_bounds_edge_history(self):
        """Without flow control a fast producer's edge histories grow with
        the phase backlog; with max_in_flight_phases they stay bounded."""
        prog, _ = pipeline_workload(depth=3, phases=1)
        phases = signals(300)

        # Make the tail vertex slow so the head races ahead.
        import time as _time

        tail = prog.behaviors["v3"]
        orig = tail.on_execute

        def slow(ctx, orig=orig):
            _time.sleep(0.0003)
            return orig(ctx)

        tail.on_execute = slow  # type: ignore[method-assign]

        free = ParallelEngine(prog, num_threads=2).run(phases)
        bounded = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(max_in_flight_phases=4),
        ).run(phases)
        assert bounded.records == free.records
        assert bounded.stats["queue"]["max_depth"] <= free.stats["queue"][
            "max_depth"
        ]

    def test_pacing_and_flow_control_together(self):
        prog, phases = grid_workload(2, 3, phases=15, seed=3)
        serial = SerialExecutor(prog).run(phases)
        res = ParallelEngine(
            prog,
            num_threads=2,
            env=EnvironmentConfig(pacing=0.0005, max_in_flight_phases=2),
        ).run(phases)
        assert_serializable(serial, res)


class TestEmitToTargeting:
    def test_selective_emission(self):
        """emit_to sends to one successor; the other sees absence."""
        g = ComputationGraph.from_edges([("src", "left"), ("src", "right")])

        class Splitter(PassthroughSource):
            def on_execute(self, ctx):
                if ctx.phase % 2 == 0:
                    ctx.emit_to("left", ctx.phase)
                else:
                    ctx.emit_to("right", ctx.phase)
                return EMIT_NOTHING

        prog = Program(
            g,
            {"src": Splitter(), "left": forward_vertex(), "right": forward_vertex()},
        )
        serial = SerialExecutor(prog).run(signals(6))
        par = ParallelEngine(prog, num_threads=2).run(signals(6))
        assert_serializable(serial, par)
        assert [p for p, _ in serial.records["left"]] == [2, 4, 6]
        assert [p for p, _ in serial.records["right"]] == [1, 3, 5]
