"""Unit tests for the computation-graph container."""

import pytest

from repro.errors import (
    CycleError,
    DuplicateVertexError,
    GraphError,
    UnknownVertexError,
)
from repro.graph.model import ComputationGraph, EdgeSpec


def simple_graph() -> ComputationGraph:
    g = ComputationGraph()
    g.add_vertices(["a", "b", "c"])
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestConstruction:
    def test_add_vertex_and_query(self):
        g = ComputationGraph()
        g.add_vertex("a")
        assert g.has_vertex("a")
        assert "a" in g
        assert len(g) == 1
        assert g.vertices() == ["a"]

    def test_add_vertices_preserves_order(self):
        g = ComputationGraph()
        g.add_vertices(["z", "a", "m"])
        assert g.vertices() == ["z", "a", "m"]

    def test_duplicate_vertex_rejected(self):
        g = ComputationGraph()
        g.add_vertex("a")
        with pytest.raises(DuplicateVertexError):
            g.add_vertex("a")

    def test_empty_name_rejected(self):
        g = ComputationGraph()
        with pytest.raises(GraphError):
            g.add_vertex("")

    def test_non_string_name_rejected(self):
        g = ComputationGraph()
        with pytest.raises(GraphError):
            g.add_vertex(3)  # type: ignore[arg-type]

    def test_add_edge(self):
        g = simple_graph()
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert g.num_edges == 2

    def test_edge_to_unknown_vertex(self):
        g = ComputationGraph()
        g.add_vertex("a")
        with pytest.raises(UnknownVertexError):
            g.add_edge("a", "ghost")
        with pytest.raises(UnknownVertexError):
            g.add_edge("ghost", "a")

    def test_self_loop_rejected(self):
        g = ComputationGraph()
        g.add_vertex("a")
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_edge("a", "b")

    def test_from_edges_creates_vertices_in_first_appearance_order(self):
        g = ComputationGraph.from_edges([("x", "y"), ("y", "z"), ("x", "z")])
        assert g.vertices() == ["x", "y", "z"]
        assert g.num_edges == 3

    def test_from_edges_extra_vertices(self):
        g = ComputationGraph.from_edges([("a", "b")], extra_vertices=["isolated"])
        assert g.has_vertex("isolated")
        assert g.in_degree("isolated") == 0
        assert g.out_degree("isolated") == 0


class TestQueries:
    def test_sources_and_sinks(self):
        g = simple_graph()
        assert g.sources() == ["a"]
        assert g.sinks() == ["c"]

    def test_isolated_vertex_is_both(self):
        g = ComputationGraph.from_edges([("a", "b")], extra_vertices=["i"])
        assert "i" in g.sources()
        assert "i" in g.sinks()

    def test_successors_predecessors(self):
        g = simple_graph()
        assert g.successors("a") == ["b"]
        assert g.predecessors("c") == ["b"]
        assert g.predecessors("a") == []

    def test_degrees(self):
        g = simple_graph()
        assert g.in_degree("b") == 1
        assert g.out_degree("b") == 1
        assert g.in_degree("a") == 0

    def test_unknown_vertex_query_raises(self):
        g = simple_graph()
        with pytest.raises(UnknownVertexError):
            g.successors("ghost")

    def test_edges_listing(self):
        g = simple_graph()
        assert g.edges() == [EdgeSpec("a", "b"), EdgeSpec("b", "c")]

    def test_edge_spec_unpacks(self):
        src, dst = EdgeSpec("a", "b")
        assert (src, dst) == ("a", "b")

    def test_repr(self):
        assert "vertices=3" in repr(simple_graph())


class TestValidation:
    def test_valid_dag_passes(self):
        simple_graph().validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            ComputationGraph().validate()

    def test_cycle_detected(self):
        g = ComputationGraph()
        g.add_vertices(["a", "b", "c"])
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        with pytest.raises(CycleError) as exc_info:
            g.validate()
        cycle = exc_info.value.cycle
        assert len(cycle) >= 3
        # The witness must be a genuine cycle.
        for u, v in zip(cycle, cycle[1:]):
            assert g.has_edge(u, v)

    def test_two_cycle(self):
        g = ComputationGraph()
        g.add_vertices(["a", "b"])
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert not g.is_acyclic()

    def test_is_acyclic_true(self):
        assert simple_graph().is_acyclic()

    def test_cycle_in_large_graph(self):
        g = ComputationGraph()
        names = [f"v{i}" for i in range(20)]
        g.add_vertices(names)
        for a, b in zip(names, names[1:]):
            g.add_edge(a, b)
        g.add_edge(names[-1], names[10])  # back edge
        with pytest.raises(CycleError):
            g.validate()


class TestTransforms:
    def test_copy_is_independent(self):
        g = simple_graph()
        g2 = g.copy()
        g2.add_vertex("d")
        assert not g.has_vertex("d")
        assert g2.has_edge("a", "b")

    def test_reachable_from(self):
        g = ComputationGraph.from_edges([("a", "b"), ("b", "c"), ("x", "y")])
        assert g.reachable_from(["a"]) == {"a", "b", "c"}
        assert g.reachable_from(["x"]) == {"x", "y"}

    def test_reachable_from_unknown_raises(self):
        with pytest.raises(UnknownVertexError):
            simple_graph().reachable_from(["ghost"])

    def test_induced_subgraph(self):
        g = ComputationGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        sub = g.induced_subgraph(["a", "c"])
        assert sub.vertices() == ["a", "c"]
        assert sub.has_edge("a", "c")
        assert sub.num_edges == 1
