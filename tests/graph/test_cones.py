"""Tests for ancestor cones (:mod:`repro.graph.cones`).

The cone layer underpins the per-dependency frontier mode of the
scheduler: ``ancestors(v)`` must be exactly the set of vertices with a
directed path into *v*, every cone must live below ``enable(v)`` (the
restricted-numbering prefix property), and fused-plan stage cones must be
the projection of the plan-space cones.
"""

import random

import pytest

from repro.core.plan import compile_plan
from repro.core.program import Program
from repro.graph.cones import ConeIndex, stage_cones
from repro.graph.generators import (
    chain_graph,
    diamond_graph,
    fan_in_graph,
    fig1_graph,
    random_dag,
)
from repro.graph.model import ComputationGraph
from repro.graph.numbering import number_graph
from repro.streams.workloads import comb_workload, wide_workload


def brute_force_ancestors(numbering, v):
    """Ancestors of *v* by reverse reachability over the index graph."""
    seen = set()
    stack = list(numbering.predecessor_indices(v))
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        stack.extend(numbering.predecessor_indices(u))
    return frozenset(seen)


def numbering_of(graph):
    return number_graph(graph)


class TestConeDerivation:
    @pytest.mark.parametrize("seed", range(40))
    def test_matches_brute_force_on_random_dags(self, seed):
        rng = random.Random(seed)
        g = random_dag(
            rng.randint(2, 12), edge_prob=rng.uniform(0.1, 0.7), seed=seed
        )
        num = numbering_of(g)
        cones = ConeIndex(num)
        for v in range(1, num.n + 1):
            expected = brute_force_ancestors(num, v)
            assert cones.ancestors(v) == expected
            assert cones.cone(v) == expected | {v}

    @pytest.mark.parametrize("seed", range(40))
    def test_prefix_property_on_random_dags(self, seed):
        g = random_dag(10, edge_prob=0.4, seed=seed)
        cones = ConeIndex(numbering_of(g))
        cones.verify_prefix_property()
        for v in range(1, cones.n + 1):
            anc = cones.ancestors(v)
            assert all(u <= cones.enable[v] for u in anc)
            assert cones.is_source(v) == (not anc)

    def test_enable_and_in_degree_tables(self):
        g = diamond_graph()
        num = numbering_of(g)
        cones = ConeIndex(num)
        for v in range(1, num.n + 1):
            preds = num.predecessor_indices(v)
            assert cones.preds[v] == preds
            assert cones.in_degree[v] == len(preds)
            assert cones.enable[v] == (max(preds) if preds else 0)
            assert cones.succs[v] == num.successor_indices(v)


class TestConeCount:
    def test_chain_has_n_distinct_cones(self):
        cones = ConeIndex(numbering_of(chain_graph(6)))
        assert cones.cone_count == 6

    def test_fan_in_cones(self):
        # fan sources each own a singleton cone; the sink's cone is
        # everything — fan + 1 distinct cones.
        cones = ConeIndex(numbering_of(fan_in_graph(5)))
        assert cones.cone_count == 6

    def test_wide_forest_is_all_distinct(self):
        program, _ = wide_workload(lanes=3, depth=3, phases=1)
        cones = ConeIndex(program.numbering)
        assert cones.cone_count == 9  # every vertex's cone is lane-local

    def test_duplicate_cones_collapse(self):
        # Two sinks with identical predecessor sets share an ancestor set
        # but still have distinct cones (each contains itself).
        g = ComputationGraph(name="dup")
        g.add_vertices(["s", "a", "b"])
        g.add_edge("s", "a")
        g.add_edge("s", "b")
        cones = ConeIndex(numbering_of(g))
        assert cones.cone_count == 3


class TestStageCones:
    def test_unfused_plan_is_strict_ancestors(self):
        program, _ = comb_workload(lanes=2, depth=3, phases=1)
        plan = compile_plan(program, fuse=False)
        num = program.numbering
        got = stage_cones(plan)
        for name in program.graph.vertices():
            v = num.index_of[name]
            expected = {num.name_of(u) for u in brute_force_ancestors(num, v)}
            assert got[name] == expected

    def test_fused_plan_matches_planspace_projection(self):
        # The union-of-member-cones definition must agree with computing
        # cones directly in plan space and mapping stages back to members.
        program, _ = comb_workload(lanes=3, depth=4, phases=1)
        plan = compile_plan(program, fuse=True)
        assert plan.fused_stage_count > 0  # the comb has chains to fuse
        got = plan.stage_cones()

        plan_num = plan.program.numbering
        plan_cones = ConeIndex(plan_num)
        for stage in plan.program.graph.vertices():
            s = plan_num.index_of[stage]
            expected = set()
            for anc_stage_idx in plan_cones.ancestors(s):
                expected.update(plan.members(plan_num.name_of(anc_stage_idx)))
            assert got[stage] == expected, stage

    @pytest.mark.parametrize("seed", range(15))
    def test_fused_random_dags_match_projection(self, seed):
        g = random_dag(10, edge_prob=0.35, seed=seed)
        program = Program(
            g,
            {v: _noop_behavior() for v in g.vertices()},
            name=f"cones-{seed}",
        )
        plan = compile_plan(program, fuse=True)
        got = stage_cones(plan)
        plan_num = plan.program.numbering
        plan_cones = ConeIndex(plan_num)
        for stage in plan.program.graph.vertices():
            s = plan_num.index_of[stage]
            expected = set()
            for u in plan_cones.ancestors(s):
                expected.update(plan.members(plan_num.name_of(u)))
            # External-only: members of the stage itself are excluded.
            expected -= set(plan.members(stage))
            assert got[stage] == expected


def _noop_behavior():
    from repro.core.vertex import FunctionVertex

    return FunctionVertex(lambda ctx: None)


class TestFig1:
    def test_fig1_cones_are_nested_correctly(self):
        cones = ConeIndex(numbering_of(fig1_graph()))
        cones.verify_prefix_property()
        # Every vertex's cone contains the cones of its predecessors.
        for v in range(1, cones.n + 1):
            for u in cones.preds[v]:
                assert cones.cone(u) <= cones.cone(v)
