"""Linear-chain discovery and graph fusion (:mod:`repro.graph.fuse`)."""

from __future__ import annotations

import pytest

from repro.graph.fuse import find_linear_chains, fuse_graph, fused_stage_name
from repro.graph.model import ComputationGraph
from repro.graph.numbering import number_graph, verify_numbering


def g_from(edges, extra=()):
    return ComputationGraph.from_edges(edges, extra_vertices=extra)


class TestFindLinearChains:
    def test_pure_chain_is_one_maximal_chain(self):
        g = g_from([("a", "b"), ("b", "c"), ("c", "d")])
        assert find_linear_chains(g) == [["a", "b", "c", "d"]]

    def test_diamond_has_no_chains(self):
        # a fans out to b,c which fan into d: no fusible edge anywhere.
        g = g_from([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert find_linear_chains(g) == []

    def test_chain_broken_by_fan_out(self):
        # a->b->c then c fans out: the c->d and c->e edges are not fusible,
        # but a->b->c still is.
        g = g_from([("a", "b"), ("b", "c"), ("c", "d"), ("c", "e")])
        assert find_linear_chains(g) == [["a", "b", "c"]]

    def test_chain_broken_by_fan_in(self):
        # x and y both feed m: m's in-degree is 2, so only m->t fuses.
        g = g_from([("x", "m"), ("y", "m"), ("m", "t")])
        assert find_linear_chains(g) == [["m", "t"]]

    def test_tails_after_join_form_chains(self):
        # Two source chains joining at a correlator whose tail is a chain:
        # s1->a1 fuses, s2->a2 fuses, corr->alarm fuses; the join edges
        # a1->corr / a2->corr do not.
        g = g_from(
            [
                ("s1", "a1"),
                ("s2", "a2"),
                ("a1", "corr"),
                ("a2", "corr"),
                ("corr", "alarm"),
            ]
        )
        chains = find_linear_chains(g)
        assert sorted(chains) == [["corr", "alarm"], ["s1", "a1"], ["s2", "a2"]]

    def test_isolated_and_single_vertices_yield_nothing(self):
        g = ComputationGraph()
        g.add_vertices(["lone", "alone"])
        assert find_linear_chains(g) == []

    def test_chains_are_vertex_disjoint(self):
        g = g_from(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")]
        )
        chains = find_linear_chains(g)
        seen = [v for chain in chains for v in chain]
        assert len(seen) == len(set(seen))


class TestFuseGraph:
    def test_full_chain_collapses_to_one_stage(self):
        g = g_from([("a", "b"), ("b", "c")])
        fr = fuse_graph(g)
        assert fr.graph.num_vertices == 1
        assert fr.graph.num_edges == 0
        (stage,) = fr.graph.vertices()
        assert fr.members_of[stage] == ("a", "b", "c")
        assert fr.stage_of == {"a": stage, "b": stage, "c": stage}
        assert fr.fused_stage_count == 1
        assert fr.vertices_eliminated == 2

    def test_external_edges_rewire_to_stage_endpoints(self):
        # s1/s2 -> m -> t -> sink; m->t->sink? No: give t a side output so
        # only m->t fuses, and check the rewired edges.
        g = g_from(
            [("s1", "m"), ("s2", "m"), ("m", "t"), ("t", "u"), ("t", "w")]
        )
        fr = fuse_graph(g)
        stage = fr.stage_of["m"]
        assert fr.members_of[stage] == ("m", "t")
        assert fr.graph.has_edge("s1", stage)
        assert fr.graph.has_edge("s2", stage)
        assert fr.graph.has_edge(stage, "u")
        assert fr.graph.has_edge(stage, "w")
        # Unfused vertices keep their own names and identity mapping.
        for v in ("s1", "s2", "u", "w"):
            assert fr.stage_of[v] == v
            assert fr.members_of[v] == (v,)

    def test_fused_graph_renumbers_validly(self):
        g = g_from(
            [
                ("s1", "a1"),
                ("s2", "a2"),
                ("a1", "corr"),
                ("a2", "corr"),
                ("corr", "alarm"),
            ]
        )
        fr = fuse_graph(g)
        nb = number_graph(fr.graph)
        verify_numbering(fr.graph, nb.index_of)

    def test_no_chain_graph_passes_through(self):
        g = g_from([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        fr = fuse_graph(g)
        assert fr.fused_stage_count == 0
        assert fr.vertices_eliminated == 0
        assert sorted(fr.graph.vertices()) == sorted(g.vertices())
        assert len(fr.graph.edges()) == len(g.edges())

    def test_stage_name_collision_gets_suffix(self):
        taken = {"a..c"}
        assert fused_stage_name(["a", "b", "c"], taken) == "a..c'"

    def test_parallel_chains_dedup_inter_stage_edges(self):
        # a->b fuses and c->d fuses; b feeds both c and d would create two
        # plan edges between the same stages only if both endpoints map to
        # the same pair — exercise the dedup with b->c and b->d where c,d
        # do NOT fuse (c has in-degree 1 but two successors of b break
        # fusion), then a genuinely duplicated stage edge case:
        g = g_from([("a", "b"), ("b", "c"), ("b", "d")])
        fr = fuse_graph(g)
        stage = fr.stage_of["a"]
        assert fr.members_of[stage] == ("a", "b")
        assert sorted(s.dst for s in fr.graph.edges()) == ["c", "d"]
