"""Tests for graph builders, including the paper's exact figure graphs."""

import pytest

from repro.errors import GraphError
from repro.graph.analysis import depth, levels, width
from repro.graph.generators import (
    binary_tree_graph,
    chain_graph,
    diamond_graph,
    fan_in_graph,
    fan_out_graph,
    fig1_graph,
    fig2_graph,
    fig3_graph,
    layered_graph,
    random_dag,
    vertex_name,
)
from repro.graph.numbering import number_graph, verify_numbering


class TestFig1:
    def test_shape(self):
        g = fig1_graph()
        assert g.num_vertices == 10
        assert len(g.sources()) == 2
        assert len(g.sinks()) == 2
        assert depth(g) == 5  # 5 phases in flight, as the figure shows

    def test_numbering_is_identity(self):
        nb = number_graph(fig1_graph())
        assert nb.index_of == {vertex_name(i): i for i in range(1, 11)}

    def test_every_inner_vertex_has_two_inputs(self):
        g = fig1_graph()
        for v in g.vertices():
            if v not in g.sources():
                assert g.in_degree(v) == 2


class TestFig3:
    def test_shape(self):
        g = fig3_graph()
        assert g.num_vertices == 6
        assert g.sources() == ["v1", "v2"]
        nb = number_graph(g)
        assert nb.m_sequence() == [2, 2, 4, 4, 6, 6, 6]

    def test_edges_match_reconstruction(self):
        g = fig3_graph()
        assert g.has_edge("v1", "v3")
        assert g.has_edge("v2", "v3")
        assert g.has_edge("v2", "v4")
        assert g.has_edge("v3", "v5")
        assert g.has_edge("v4", "v5")
        assert g.has_edge("v4", "v6")
        assert g.num_edges == 6


class TestChains:
    def test_chain(self):
        g = chain_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4
        assert depth(g) == 5
        assert width(g) == 1

    def test_chain_of_one(self):
        g = chain_graph(1)
        assert g.sources() == g.sinks() == ["v1"]

    def test_chain_invalid(self):
        with pytest.raises(GraphError):
            chain_graph(0)


class TestDiamondFan:
    def test_diamond(self):
        g = diamond_graph(3)
        assert g.sources() == ["src"]
        assert g.sinks() == ["sink"]
        assert g.in_degree("sink") == 3
        assert depth(g) == 3

    def test_fan_out(self):
        g = fan_out_graph(4)
        assert len(g.sinks()) == 4
        assert g.out_degree("src") == 4

    def test_fan_in(self):
        g = fan_in_graph(4)
        assert len(g.sources()) == 4
        assert g.in_degree("sink") == 4

    @pytest.mark.parametrize("builder", [diamond_graph, fan_out_graph, fan_in_graph])
    def test_invalid_size(self, builder):
        with pytest.raises(GraphError):
            builder(0)


class TestTree:
    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert len(g.sources()) == 8
        assert len(g.sinks()) == 1
        assert depth(g) == 4
        assert g.num_edges == 8 + 4 + 2

    def test_depth_zero(self):
        g = binary_tree_graph(0)
        assert g.num_vertices == 1


class TestLayered:
    def test_full_density(self):
        g = layered_graph([2, 3, 2], density=1.0)
        assert g.num_vertices == 7
        assert g.num_edges == 2 * 3 + 3 * 2
        assert depth(g) == 3

    def test_every_non_source_has_a_predecessor(self):
        g = layered_graph([3, 4, 4, 2], density=0.2, seed=5)
        lv = levels(g)
        for v in g.vertices():
            if lv[v] > 0:
                assert g.in_degree(v) >= 1

    def test_level_structure_preserved(self):
        g = layered_graph([2, 2, 2], density=0.5, seed=3)
        lv = levels(g)
        for li in range(3):
            assert sum(1 for v in g.vertices() if lv[v] == li) == 2

    def test_deterministic_per_seed(self):
        a = layered_graph([3, 3, 3], density=0.4, seed=9)
        b = layered_graph([3, 3, 3], density=0.4, seed=9)
        assert a.edges() == b.edges()

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            layered_graph([])
        with pytest.raises(GraphError):
            layered_graph([2, 0])
        with pytest.raises(GraphError):
            layered_graph([2, 2], density=1.5)


class TestRandomDag:
    def test_acyclic_and_numberable(self):
        for seed in range(5):
            g = random_dag(30, edge_prob=0.3, seed=seed)
            g.validate()
            nb = number_graph(g)
            verify_numbering(g, nb.index_of)

    def test_deterministic_per_seed(self):
        a = random_dag(20, edge_prob=0.3, seed=4)
        b = random_dag(20, edge_prob=0.3, seed=4)
        assert a.edges() == b.edges()
        assert a.vertices() == b.vertices()

    def test_single_vertex(self):
        g = random_dag(1)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            random_dag(0)
        with pytest.raises(GraphError):
            random_dag(3, edge_prob=-0.1)
