"""Tests for structural graph analysis."""

import pytest

from repro.graph.analysis import (
    critical_path,
    depth,
    level_histogram,
    levels,
    max_pipelining_depth,
    width,
)
from repro.graph.generators import (
    chain_graph,
    diamond_graph,
    fan_in_graph,
    fig1_graph,
    layered_graph,
)
from repro.graph.model import ComputationGraph


class TestLevels:
    def test_chain_levels(self):
        lv = levels(chain_graph(4))
        assert lv == {"v1": 0, "v2": 1, "v3": 2, "v4": 3}

    def test_longest_path_semantics(self):
        # a -> b -> d and a -> d: d's level is 2 (longest path), not 1.
        g = ComputationGraph.from_edges([("a", "b"), ("b", "d"), ("a", "d")])
        assert levels(g)["d"] == 2

    def test_fan_in_levels(self):
        lv = levels(fan_in_graph(3))
        assert lv["sink"] == 1
        assert all(lv[f"src{i}"] == 0 for i in (1, 2, 3))


class TestDepthWidth:
    def test_depth(self):
        assert depth(chain_graph(6)) == 6
        assert depth(fan_in_graph(5)) == 2
        assert depth(fig1_graph()) == 5

    def test_width(self):
        assert width(chain_graph(6)) == 1
        assert width(fan_in_graph(5)) == 5
        assert width(fig1_graph()) == 2

    def test_level_histogram(self):
        hist = level_histogram(layered_graph([2, 3, 1], density=1.0))
        assert hist == {0: 2, 1: 3, 2: 1}

    def test_max_pipelining_depth_equals_depth(self):
        g = fig1_graph()
        assert max_pipelining_depth(g) == depth(g) == 5


class TestCriticalPath:
    def test_unweighted(self):
        path, total = critical_path(chain_graph(4))
        assert path == ["v1", "v2", "v3", "v4"]
        assert total == 4.0

    def test_weighted_chooses_heavier_branch(self):
        g = ComputationGraph.from_edges(
            [("s", "light"), ("s", "heavy"), ("light", "t"), ("heavy", "t")]
        )
        weight = {"s": 1.0, "light": 1.0, "heavy": 10.0, "t": 1.0}
        path, total = critical_path(g, weight=lambda v: weight[v])
        assert path == ["s", "heavy", "t"]
        assert total == 12.0

    def test_diamond(self):
        path, total = critical_path(diamond_graph(3))
        assert len(path) == 3
        assert total == 3.0

    def test_single_vertex(self):
        g = ComputationGraph()
        g.add_vertex("only")
        path, total = critical_path(g)
        assert path == ["only"]
        assert total == 1.0
