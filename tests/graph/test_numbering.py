"""Tests for the restricted vertex numbering (Section 3.1.1).

Includes property-based tests checking, over random DAGs, that

* FIFO-Kahn numberings are always topological and restricted;
* the O(N+E) verifier agrees with the brute-force S(v) definition;
* the m table satisfies the paper's properties (2)-(4).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NumberingError
from repro.graph.generators import (
    chain_graph,
    diamond_graph,
    fan_in_graph,
    fig2_graph,
    fig2a_numbering,
    fig2b_numbering,
    random_dag,
)
from repro.graph.model import ComputationGraph
from repro.graph.numbering import (
    Numbering,
    compute_S,
    compute_m,
    enable_indices,
    number_graph,
    verify_numbering,
)


# ---------------------------------------------------------------------------
# The paper's Figure 2 — exact reproduction
# ---------------------------------------------------------------------------


class TestFigure2:
    def test_fig2b_is_accepted(self):
        verify_numbering(fig2_graph(), fig2b_numbering())

    def test_fig2b_m_sequence_matches_paper(self):
        nb = Numbering.from_mapping(fig2_graph(), fig2b_numbering())
        assert nb.m_sequence() == [3, 3, 4, 5, 5, 6, 7, 7]

    def test_fig2a_is_topological_but_rejected(self):
        g = fig2_graph()
        numbering = fig2a_numbering()
        for edge in g.edges():
            assert numbering[edge.src] < numbering[edge.dst]
        with pytest.raises(NumberingError, match="restriction"):
            verify_numbering(g, numbering)

    def test_fig2a_S2_matches_paper(self):
        # The paper: S(2) = {1, 2, 3, 5} under numbering (a).
        assert compute_S(fig2_graph(), fig2a_numbering(), 2) == {1, 2, 3, 5}

    def test_fig2b_S_values_match_paper(self):
        g = fig2_graph()
        nb = fig2b_numbering()
        expected = {
            0: {1, 2, 3},
            1: {1, 2, 3},
            2: {1, 2, 3, 4},
            3: {1, 2, 3, 4, 5},
            4: {1, 2, 3, 4, 5},
            5: {1, 2, 3, 4, 5, 6},
            6: {1, 2, 3, 4, 5, 6, 7},
            7: {1, 2, 3, 4, 5, 6, 7},
        }
        for v, s in expected.items():
            assert compute_S(g, nb, v) == s

    def test_number_graph_on_fig2_is_restricted(self):
        nb = number_graph(fig2_graph())
        verify_numbering(nb.graph, nb.index_of)


# ---------------------------------------------------------------------------
# Numbering object behaviour
# ---------------------------------------------------------------------------


class TestNumberingObject:
    def test_name_of_round_trip(self):
        nb = number_graph(fig2_graph())
        for name, idx in nb.index_of.items():
            assert nb.name_of(idx) == name

    def test_name_of_out_of_range(self):
        nb = number_graph(chain_graph(3))
        with pytest.raises(NumberingError):
            nb.name_of(0)
        with pytest.raises(NumberingError):
            nb.name_of(4)

    def test_m_out_of_range(self):
        nb = number_graph(chain_graph(3))
        with pytest.raises(NumberingError):
            nb.m(-1)
        with pytest.raises(NumberingError):
            nb.m(4)

    def test_S_is_prefix(self):
        nb = number_graph(fig2_graph())
        for v in range(nb.n + 1):
            assert nb.S(v) == list(range(1, nb.m(v) + 1))

    def test_source_indices_are_prefix(self):
        nb = number_graph(fan_in_graph(4))
        assert nb.source_indices() == [1, 2, 3, 4]
        assert nb.num_sources == 4

    def test_names_in_order(self):
        nb = number_graph(chain_graph(4))
        assert nb.names_in_order() == ["v1", "v2", "v3", "v4"]

    def test_predecessor_successor_indices(self):
        nb = Numbering.from_mapping(fig2_graph(), fig2b_numbering())
        assert nb.predecessor_indices(6) == [2, 5]
        assert nb.successor_indices(2) == [4, 6]

    def test_equality(self):
        g = fig2_graph()
        a = Numbering.from_mapping(g, fig2b_numbering())
        b = Numbering.from_mapping(g, fig2b_numbering())
        assert a == b


# ---------------------------------------------------------------------------
# Verifier failure modes
# ---------------------------------------------------------------------------


class TestVerifierRejections:
    def test_missing_vertex(self):
        g = chain_graph(3)
        with pytest.raises(NumberingError, match="cover"):
            verify_numbering(g, {"v1": 1, "v2": 2})

    def test_extra_vertex(self):
        g = chain_graph(2)
        with pytest.raises(NumberingError, match="cover"):
            verify_numbering(g, {"v1": 1, "v2": 2, "ghost": 3})

    def test_not_a_permutation(self):
        g = chain_graph(3)
        with pytest.raises(NumberingError, match="permutation"):
            verify_numbering(g, {"v1": 1, "v2": 1, "v3": 3})

    def test_zero_based_rejected(self):
        g = chain_graph(2)
        with pytest.raises(NumberingError, match="permutation"):
            verify_numbering(g, {"v1": 0, "v2": 1})

    def test_not_topological(self):
        g = chain_graph(2)
        with pytest.raises(NumberingError, match="topological"):
            verify_numbering(g, {"v1": 2, "v2": 1})

    def test_diamond_bad_interleaving(self):
        # src(1) -> mid1, mid2 -> sink.  Numbering mid1=3, sink=2 is not
        # topological; mid ordering 2,3 with sink 4 is fine either way.
        g = diamond_graph(2)
        verify_numbering(g, {"src": 1, "mid1": 2, "mid2": 3, "sink": 4})
        verify_numbering(g, {"src": 1, "mid2": 2, "mid1": 3, "sink": 4})
        with pytest.raises(NumberingError):
            verify_numbering(g, {"src": 1, "mid1": 3, "sink": 2, "mid2": 4})


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@st.composite
def random_dag_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    edge_prob = draw(st.floats(min_value=0.0, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=2**30))
    return random_dag(n, edge_prob=edge_prob, seed=seed)


@st.composite
def graph_and_tiebreak(draw):
    g = draw(random_dag_strategy())
    use_tiebreak = draw(st.booleans())
    return g, (None if not use_tiebreak else (lambda name: name))


class TestProperties:
    @given(random_dag_strategy())
    @settings(max_examples=60, deadline=None)
    def test_fifo_kahn_always_restricted(self, g: ComputationGraph):
        nb = number_graph(g)
        verify_numbering(g, nb.index_of)  # must not raise

    @given(graph_and_tiebreak())
    @settings(max_examples=40, deadline=None)
    def test_tiebreak_still_restricted(self, gt):
        g, tiebreak = gt
        nb = number_graph(g, tiebreak=tiebreak)
        verify_numbering(g, nb.index_of)

    @given(random_dag_strategy())
    @settings(max_examples=40, deadline=None)
    def test_m_table_matches_bruteforce(self, g: ComputationGraph):
        nb = number_graph(g)
        assert nb.m_sequence() == compute_m(g, nb.index_of)

    @given(random_dag_strategy())
    @settings(max_examples=40, deadline=None)
    def test_paper_properties_2_3_4(self, g: ComputationGraph):
        nb = number_graph(g)
        n = nb.n
        # (2) monotone
        for v in range(1, n + 1):
            assert nb.m(v - 1) <= nb.m(v)
        # (3) v < m(v) for v < N
        for v in range(1, n):
            assert v < nb.m(v)
        # (4) m(N) = N
        assert nb.m(n) == n

    @given(random_dag_strategy())
    @settings(max_examples=40, deadline=None)
    def test_verifier_agrees_with_bruteforce_on_restricted(self, g):
        """A numbering passes the O(N+E) verifier iff every S(v) is a
        sequential prefix, per the brute-force definition."""
        nb = number_graph(g)
        for v in range(nb.n + 1):
            assert compute_S(g, nb.index_of, v) == set(range(1, nb.m(v) + 1))

    @given(random_dag_strategy(), st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=40, deadline=None)
    def test_verifier_matches_bruteforce_on_random_topo_orders(self, g, seed):
        """For arbitrary topological orders (not necessarily restricted),
        the fast verifier accepts exactly when brute-force S(v) values are
        all prefixes."""
        import random as _random

        rng = _random.Random(seed)
        # Random topological order: Kahn with random choice.
        indeg = {v: g.in_degree(v) for v in g.vertices()}
        avail = [v for v in g.vertices() if indeg[v] == 0]
        index_of = {}
        i = 1
        while avail:
            v = avail.pop(rng.randrange(len(avail)))
            index_of[v] = i
            i += 1
            for w in g.successors(v):
                indeg[w] -= 1
                if indeg[w] == 0:
                    avail.append(w)
        brute_ok = all(
            compute_S(g, index_of, v)
            == set(range(1, len(compute_S(g, index_of, v)) + 1))
            for v in range(g.num_vertices + 1)
        )
        try:
            verify_numbering(g, index_of)
            fast_ok = True
        except NumberingError:
            fast_ok = False
        assert fast_ok == brute_ok

    @given(random_dag_strategy())
    @settings(max_examples=30, deadline=None)
    def test_enable_indices_definition(self, g):
        nb = number_graph(g)
        enable = enable_indices(g, nb.index_of)
        for w in g.vertices():
            preds = g.predecessors(w)
            expected = max((nb.index_of[u] for u in preds), default=0)
            assert enable[w] == expected


class TestScale:
    def test_large_chain(self):
        g = chain_graph(2000)
        nb = number_graph(g)
        assert nb.m(2000) == 2000
        assert nb.index_of["v1"] == 1
        assert nb.index_of["v2000"] == 2000

    def test_large_random(self):
        g = random_dag(500, edge_prob=0.02, seed=99)
        nb = number_graph(g)
        verify_numbering(g, nb.index_of)


class TestBulkSeededProperties:
    """Equations (2)-(4) and the S(v) prefix property over a fixed fleet
    of 240 seeded random DAGs.

    Unlike the hypothesis suites above, every case here is pinned — the
    same graphs are checked on every run, so a regression bisects to a
    single reproducible ``(n, edge_prob, seed)`` triple.
    """

    CASES = [
        (n, edge_prob, seed)
        for seed in range(20)
        for n in (1, 2, 5, 12, 30, 60)
        for edge_prob in (0.1, 0.5)
    ]

    def test_case_count_meets_floor(self):
        assert len(self.CASES) >= 200

    def test_properties_2_3_4_and_prefix_over_seeded_fleet(self):
        assert len({(n, p, s) for n, p, s in self.CASES}) == len(self.CASES)
        for n, edge_prob, seed in self.CASES:
            g = random_dag(n, edge_prob=edge_prob, seed=seed)
            nb = number_graph(g)
            label = f"(n={n}, edge_prob={edge_prob}, seed={seed})"
            # (2) m is monotone nondecreasing.
            for v in range(1, n + 1):
                assert nb.m(v - 1) <= nb.m(v), f"(2) fails at v={v} {label}"
            # (3) v < m(v) for every v < N.
            for v in range(1, n):
                assert v < nb.m(v), f"(3) fails at v={v} {label}"
            # (4) m(N) = N.
            assert nb.m(n) == n, f"(4) fails {label}"
            # Prefix property: S(v) = {1..m(v)} (brute-force definition).
            for v in range(n + 1):
                assert compute_S(g, nb.index_of, v) == set(
                    range(1, nb.m(v) + 1)
                ), f"S({v}) not the prefix 1..m({v}) {label}"
            # And the O(N+E) verifier agrees.
            verify_numbering(g, nb.index_of)
